"""Zero-copy model handoff to sweep workers over POSIX shared memory.

The sweep runner's spawn-mode workers used to rebuild the whole model —
a multi-second synthetic-map regeneration per worker per pool — and its
fork-mode workers relied on copy-on-write inheritance that silently
degrades as the parent's reference counts touch every inherited page.
This module replaces both with an explicit handoff:

* :class:`SharedBlock` packs named NumPy arrays into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` segment and hands
  out a picklable :class:`SharedBlockHandle` (segment name + per-array
  dtype/shape/offset specs) that any process can :meth:`~SharedBlock.attach`
  to in microseconds;
* :class:`ModelShare` publishes a :class:`~repro.core.model.StarlinkDivideModel`
  as one block (the dataset's cell and county columns) plus a small
  picklable handle carrying the scalar config, and rebuilds an
  equivalent model from an attached handle via
  :meth:`~repro.demand.dataset.DemandDataset.from_columns` — no map
  regeneration, no column copies.

Lifecycle: the *owner* (the sweep parent) creates the segment, keeps it
alive across pool rebuilds and the serial-degradation path, and
unlinks it in ``close()`` (also registered via :mod:`atexit` so a
crashed parent does not leak ``/dev/shm`` segments). Workers attach
without registering with the ``resource_tracker`` — on Python < 3.13
attaching registers the segment and the tracker would unlink it when
the *first* worker exits, yanking it from under the others (bpo-39959);
``_attach_untracked`` handles both interpreter generations.
"""

from __future__ import annotations

import atexit
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import RunnerError

__all__ = [
    "SHM_NAME_PREFIX",
    "ArraySpec",
    "ModelShare",
    "ModelShareHandle",
    "SharedBlock",
    "SharedBlockHandle",
]

#: Prefix of every segment this module creates; the leak-detection tests
#: glob ``/dev/shm`` for it after pool teardown.
SHM_NAME_PREFIX = "repro_shm_"

#: Byte alignment of each packed array within the segment.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArraySpec:
    """Location of one packed array inside a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


@dataclass(frozen=True)
class SharedBlockHandle:
    """Picklable address of a :class:`SharedBlock`: segment name + layout."""

    shm_name: str
    specs: Tuple[ArraySpec, ...]
    size: int


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    Python 3.13 grew ``track=False``; earlier interpreters register every
    attach with the resource tracker, which then unlinks the segment when
    the first attaching process exits — so the registration is undone by
    hand there.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        # Suppress registration instead of unregistering afterwards:
        # under fork the workers share the parent's tracker process, so
        # an unregister would also erase the owner's registration and
        # the owner's later unlink would trip a tracker KeyError.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(name_, rtype):
            if rtype != "shared_memory":
                original(name_, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedBlock:
    """Named NumPy arrays packed into one shared-memory segment.

    Create with :meth:`create` (the owning process), address with
    :attr:`handle`, and map from any process with :meth:`attach`.
    Attached arrays are read-only views of the segment — zero copies.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        handle: SharedBlockHandle,
        owner: bool,
    ):
        self._segment = segment
        self.handle = handle
        self._owner = owner
        self._closed = False
        if owner:
            atexit.register(self._cleanup)

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedBlock":
        """Pack ``arrays`` into a fresh segment owned by this process."""
        specs = []
        offset = 0
        flat = {name: np.ascontiguousarray(a) for name, a in arrays.items()}
        for name, array in flat.items():
            offset = _aligned(offset)
            specs.append(
                ArraySpec(
                    name=name,
                    dtype=array.dtype.str,
                    shape=tuple(array.shape),
                    offset=offset,
                )
            )
            offset += array.nbytes
        size = max(offset, 1)
        name = SHM_NAME_PREFIX + secrets.token_hex(8)
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except OSError as exc:
            raise RunnerError(f"could not create shared memory: {exc}")
        handle = SharedBlockHandle(
            shm_name=segment.name, specs=tuple(specs), size=size
        )
        block = cls(segment, handle, owner=True)
        for spec, array in zip(specs, flat.values()):
            np.ndarray(
                spec.shape, dtype=spec.dtype,
                buffer=segment.buf, offset=spec.offset,
            )[...] = array
        obs.registry().counter("runner.shm.segments_created").inc()
        obs.registry().counter("runner.shm.bytes_shared").inc(size)
        return block

    @classmethod
    def attach(cls, handle: SharedBlockHandle) -> "SharedBlock":
        """Map an existing segment by name (any process, zero-copy)."""
        try:
            segment = _attach_untracked(handle.shm_name)
        except FileNotFoundError:
            raise RunnerError(
                f"shared memory segment {handle.shm_name!r} is gone; "
                "was the owning sweep torn down?"
            )
        return cls(segment, handle, owner=False)

    def arrays(self) -> Dict[str, np.ndarray]:
        """The packed arrays as views of the segment (read-only)."""
        if self._closed:
            raise RunnerError("shared block is closed")
        views = {}
        for spec in self.handle.specs:
            view = np.ndarray(
                spec.shape,
                dtype=spec.dtype,
                buffer=self._segment.buf,
                offset=spec.offset,
            )
            view.flags.writeable = False
            views[spec.name] = view
        return views

    def close(self) -> None:
        """Drop this process's mapping; the owner also unlinks the segment.

        Idempotent. The owner's close removes the ``/dev/shm`` entry, so
        it must happen only after every worker that could attach has
        exited — the sweep runner does it in its ``finally``.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view still exported
            pass
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            atexit.unregister(self._cleanup)

    def _cleanup(self) -> None:  # pragma: no cover - atexit safety net
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "SharedBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class ModelShareHandle:
    """Everything a worker needs to rebuild the model from shared memory.

    The bulk data (dataset cell and county columns) lives in the shared
    block; the handle itself carries only scalars and small pickles, so
    shipping it through pool-initializer args is cheap under both fork
    and spawn.
    """

    block: SharedBlockHandle
    grid_resolution: int
    description: str
    county_names: Tuple[str, ...]
    capacity_blob: Optional[bytes]
    density_blob: Optional[bytes]
    fingerprint: str


class ModelShare:
    """A published model: one shared block + a picklable rebuild recipe."""

    def __init__(self, block: SharedBlock, handle: ModelShareHandle):
        self._block = block
        self.handle = handle

    @classmethod
    def publish(cls, model) -> "ModelShare":
        """Pack ``model``'s dataset columns into shared memory (owner side)."""
        import pickle

        dataset = model.dataset
        with obs.span("runner.shm.publish"):
            columns = dataset.to_columns()
            county = dataset.county_columns()
            arrays = {f"cell.{k}": v for k, v in columns.items()}
            arrays.update({f"county.{k}": v for k, v in county.items()})
            county_ids = county["county_id"]
            names = tuple(
                dataset.counties[int(i)].name for i in county_ids
            )

            def _blob(obj) -> Optional[bytes]:
                if obj is None:
                    return None
                try:
                    return pickle.dumps(obj)
                except Exception:
                    return None

            block = SharedBlock.create(arrays)
            handle = ModelShareHandle(
                block=block.handle,
                grid_resolution=dataset.grid_resolution,
                description=dataset.description,
                county_names=names,
                capacity_blob=_blob(model.capacity),
                density_blob=_blob(getattr(model.sizer, "density", None)),
                fingerprint=dataset.fingerprint(),
            )
            return cls(block, handle)

    @staticmethod
    def build_model(handle: ModelShareHandle):
        """Attach and rebuild the model (worker side, zero-copy columns).

        The returned model keeps the attached :class:`SharedBlock` alive
        via ``model._shm_block`` for as long as the model itself lives;
        the worker's process exit drops the mapping.
        """
        import pickle

        from repro.core.model import StarlinkDivideModel
        from repro.demand.bsl import County
        from repro.demand.dataset import DemandDataset
        from repro.geo.coords import LatLon

        with obs.span("runner.shm.attach"):
            block = SharedBlock.attach(handle.block)
            arrays = block.arrays()
            columns = {
                k[len("cell."):]: v
                for k, v in arrays.items()
                if k.startswith("cell.")
            }
            county_ids = arrays["county.county_id"]
            counties = {
                int(county_id): County(
                    county_id=int(county_id),
                    name=name,
                    seat=LatLon(float(lat), float(lon)),
                    median_household_income_usd=float(income),
                )
                for county_id, name, lat, lon, income in zip(
                    county_ids,
                    handle.county_names,
                    arrays["county.seat_lat"],
                    arrays["county.seat_lon"],
                    arrays["county.income"],
                )
            }
            dataset = DemandDataset.from_columns(
                columns,
                counties=counties,
                grid_resolution=handle.grid_resolution,
                description=handle.description,
            )
            capacity = (
                pickle.loads(handle.capacity_blob)
                if handle.capacity_blob
                else None
            )
            density = (
                pickle.loads(handle.density_blob)
                if handle.density_blob
                else None
            )
            model = StarlinkDivideModel(dataset, capacity, density)
            model._shm_block = block
            obs.registry().counter("runner.shm.attaches").inc()
            return model

    def close(self) -> None:
        """Tear the published segment down (owner side, idempotent)."""
        self._block.close()

    def __enter__(self) -> "ModelShare":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
