"""Parallel sweep runner with a content-addressed result cache.

The scaling seam of the library: parameter sweeps (beamspread x
oversubscription x scenario, as in the paper's Table 2 and Figs 2-3)
fan out over worker processes and memoise onto disk, so repeated runs
are near-free::

    from repro.runner import ParameterGrid, ResultCache, SweepRunner

    grid = ParameterGrid({"beamspread": (1, 2, 5), "oversubscription": (10, 20)})
    report = SweepRunner("served", grid, n_workers=4,
                         cache=ResultCache("cache/")).run()
    headers, rows = report.table()
    print(report.summary())   # task count, wall time, cache hit rate

Serial (``n_workers=1``), parallel, and cache-warm runs of the same
grid produce identical results in identical order. ``repro-divide
sweep`` and ``repro-divide run --parallel`` drive this from the
command line.
"""

from repro.runner import faults
from repro.runner.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    task_key,
)
from repro.runner.grid import ParameterGrid, canonical_params
from repro.runner.sweep import (
    FailurePolicy,
    SweepReport,
    SweepRunner,
    TaskResult,
    TaskTimeout,
)
from repro.runner.tasks import (
    SWEEP_FUNCTIONS,
    all_sweep_ids,
    build_default_model,
    get_sweep_function,
    task_seed,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "FailurePolicy",
    "ParameterGrid",
    "ResultCache",
    "SweepReport",
    "SweepRunner",
    "SWEEP_FUNCTIONS",
    "TaskResult",
    "TaskTimeout",
    "faults",
    "all_sweep_ids",
    "build_default_model",
    "canonical_params",
    "get_sweep_function",
    "task_key",
    "task_seed",
]
