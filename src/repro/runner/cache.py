"""Content-addressed on-disk result cache for sweep tasks.

A task's cache key is the SHA-256 of (sweep id, canonicalised params,
dataset fingerprint) — see :func:`task_key`. Payloads are JSON files
named ``<key>.json`` under the cache directory, written atomically
(tmp file + rename) so a crashed run never leaves a truncated entry.
JSON round-trips ints and floats exactly (``repr``-based), so a metric
loaded from cache is bit-identical to the freshly computed one.

The cache directory resolves, in order: explicit argument, the
``REPRO_CACHE_DIR`` environment variable, ``.repro-cache`` under the
current directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.errors import RunnerError
from repro.runner.grid import canonical_params

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def task_key(
    sweep_id: str, params: Mapping[str, object], dataset_fingerprint: str
) -> str:
    """SHA-256 content address of one sweep task."""
    blob = "\n".join(
        (str(sweep_id), canonical_params(params), str(dataset_fingerprint))
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON payloads keyed by content address, one file per entry."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        root = cache_dir or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise RunnerError(
                f"cannot create cache dir {self.root}: {exc}"
            ) from exc

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise RunnerError(f"malformed cache key {key!r}")
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The cached payload, or None on miss (or unusable entry).

        An entry only counts as a hit when it parses *and* matches the
        task-payload schema (a dict whose ``"metrics"`` is a dict) —
        anything else would be re-executed by the runner anyway, and
        counting it as a hit would make the reported hit rate disagree
        with the work actually done. Counts ``runner.cache.hits`` /
        ``runner.cache.misses`` and the bytes deserialized
        (``runner.cache.read_bytes``).
        """
        from repro import obs

        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                text = handle.read()
            payload = json.loads(text)
        except FileNotFoundError:
            obs.registry().counter("runner.cache.misses").inc()
            return None
        except (json.JSONDecodeError, OSError):
            # A corrupt or half-written entry is a miss; the fresh
            # result overwrites it.
            obs.registry().counter("runner.cache.misses").inc()
            return None
        if not isinstance(payload, dict) or not isinstance(
            payload.get("metrics"), dict
        ):
            # Parseable JSON that is not a task payload (schema drift,
            # foreign file) is a miss too.
            obs.registry().counter("runner.cache.misses").inc()
            return None
        registry = obs.registry()
        registry.counter("runner.cache.hits").inc()
        registry.counter("runner.cache.read_bytes").inc(len(text))
        return payload

    def put(self, key: str, payload: Mapping) -> Path:
        """Atomically persist ``payload`` under ``key``.

        Counts entries and serialized bytes
        (``runner.cache.writes`` / ``runner.cache.write_bytes``).
        """
        from repro import obs

        path = self.path_for(key)
        encoded = json.dumps(payload, sort_keys=True)
        registry = obs.registry()
        registry.counter("runner.cache.writes").inc()
        registry.counter("runner.cache.write_bytes").inc(len(encoded))
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise RunnerError(
                f"cannot write cache entry {path}: {exc}"
            ) from exc
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"
