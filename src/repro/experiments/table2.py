"""Table 2: predicted constellation size per beamspread factor."""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table

#: The paper's Table 2, for side-by-side comparison in the rendering.
PAPER_TABLE2 = {
    1: (79287, 80567),
    2: (40611, 41261),
    5: (16486, 16750),
    10: (8284, 8417),
    15: (5532, 5621),
}


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Regenerate Table 2 and compare against the paper's values.

    The beamspread sweep goes through :class:`repro.runner.SweepRunner`
    (serial, in-process) so ``repro-divide sweep sizing`` and this
    experiment share one code path.
    """
    from repro.runner import ParameterGrid, SweepRunner

    report = SweepRunner(
        "sizing", ParameterGrid({"beamspread": tuple(PAPER_TABLE2)})
    ).run(model=model)
    ours = [
        (
            float(r.params["beamspread"]),
            int(r.metrics["constellation_full"]),
            int(r.metrics["constellation_capped"]),
        )
        for r in report.results
    ]
    rows = []
    worst_error = 0.0
    for spread, full, capped in ours:
        paper_full, paper_capped = PAPER_TABLE2[int(spread)]
        error = max(
            abs(full - paper_full) / paper_full,
            abs(capped - paper_capped) / paper_capped,
        )
        worst_error = max(worst_error, error)
        rows.append(
            (
                int(spread),
                full,
                paper_full,
                capped,
                paper_capped,
                f"{error:.1%}",
            )
        )
    table = format_table(
        (
            "Beamspread",
            "Full service",
            "(paper)",
            "Max 20:1",
            "(paper)",
            "worst err",
        ),
        rows,
        title="Table 2: predicted constellation size",
    )
    return ExperimentResult(
        experiment_id="tab2",
        title="Table 2: constellation size vs beamspread",
        text=table,
        csv_headers=(
            "beamspread",
            "full_service",
            "paper_full_service",
            "max_20_1",
            "paper_max_20_1",
        ),
        csv_rows=[row[:5] for row in rows],
        metrics={
            "size_full_s1": ours[0][1],
            "size_capped_s1": ours[0][2],
            "size_full_s2": ours[1][1],
            "worst_relative_error": worst_error,
        },
    )
