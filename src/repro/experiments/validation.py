"""Validation: the dynamical simulator vs the analytical model.

Not a paper figure — the library's own consistency experiment. It checks
the two analytical ingredients Table 2 rests on against a propagated
Walker constellation:

1. the latitude enhancement e(phi) matches the empirical satellite
   distribution, and
2. a dense-enough constellation achieves continuous coverage of a demand
   region, as the servability model assumes.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.orbits.density import ShellMixDensity
from repro.orbits.shells import GEN1_SHELLS
from repro.sim.assignment import ProportionalFair
from repro.sim.engine import SimulationClock
from repro.sim.simulation import ConstellationSimulation
from repro.viz.tables import format_table

#: Appalachia region around the peak-demand cell.
VALIDATION_BBOX = (36.0, 39.5, -89.6, -80.0)


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Run the simulator cross-check on a regional subset."""
    region = model.dataset.subset_bbox(*VALIDATION_BBOX, description="validation region")
    shells = list(GEN1_SHELLS[:2])
    simulation = ConstellationSimulation(
        shells, region, oversubscription=20.0, strategy=ProportionalFair()
    )
    # Sample just over half an orbital period at 30 s; plenty of latitude
    # samples, fast enough for a benchmark iteration.
    metrics = simulation.run(SimulationClock(duration_s=3000.0, step_s=30.0))
    report = simulation.report(metrics)

    density = ShellMixDensity(shells)
    edges = np.linspace(-50.0, 50.0, 21)
    centers, empirical = density.empirical_latitude_histogram(
        metrics.all_latitude_samples(), edges
    )
    rows = []
    errors = []
    for lat, emp in zip(centers, empirical):
        theory = density.enhancement(float(lat))
        error = abs(emp - theory) / theory
        errors.append(error)
        rows.append((f"{lat:+.1f}", f"{emp:.3f}", f"{theory:.3f}", f"{error:.1%}"))
    table = format_table(
        ("latitude", "simulated e", "analytical e", "error"),
        rows,
        title="Satellite latitude density: simulation vs theory",
    )
    worst = max(errors)
    summary = (
        f"{report.text()}\n"
        f"worst density error across latitude bins: {worst:.1%}"
    )
    return ExperimentResult(
        experiment_id="val",
        title="Validation: simulator vs analytical model",
        text=f"{table}\n\n{summary}",
        csv_headers=("latitude", "simulated_enhancement", "analytical_enhancement"),
        csv_rows=[row[:3] for row in rows],
        metrics={
            "min_coverage_fraction": report.min_coverage_fraction,
            "demand_satisfaction": report.demand_satisfaction,
            "worst_density_error": worst,
        },
    )
