"""Timeline experiment: the busy hour the static model prices away.

Not a paper figure — a temporal extension of Figure 2's question. The
paper's capacity model asks "who is unserved at the provisioned busy
hour?" once. This experiment drives the :mod:`repro.timeline` workload
over a regional slice for a simulated day: a residential diurnal curve
phased by county-seat longitude, handover-churn reconnection windows,
and a Fig-2-over-time grid of served-location fraction by hour of day
across oversubscription ratios. It also runs the flat-profile
differential — a flat curve with churn disabled must reproduce the
static pipeline's report byte-identically — and reports the verdict
as a metric CI gates on.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.orbits.shells import GEN1_SHELLS
from repro.timeline import (
    HandoverChurnModel,
    TimelineConfig,
    get_profile,
    run_timeline,
)
from repro.viz.textplot import heat_grid

#: The Appalachian subset the simulation tests use — big enough to span
#: many cells and counties, small enough for a daylong sweep in seconds.
REGION_BBOX = (37.0, 38.5, -83.5, -81.0)

#: Oversubscription ratios forming the grid columns (Figure 2's axis).
SCENARIOS = (10.0, 20.0, 35.0)

#: Daylong sweep resolution: 30-minute steps keep the experiment fast;
#: the CLI and CI smoke runs exercise the sub-minute regime.
DAY_STEP_S = 1800.0

#: The flat-identity differential runs at a sub-minute step so the
#: cached-candidate windowed visibility path is the one being proven.
IDENTITY_DURATION_S = 1200.0
IDENTITY_STEP_S = 30.0

#: Hour-of-day bucketing for the grid rows.
GRID_HOUR_STEP = 3


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Daylong diurnal + churn timelines over a regional slice."""
    dataset = model.dataset.subset_bbox(*REGION_BBOX, "timeline region")
    shells = list(GEN1_SHELLS[:2])

    identity = run_timeline(
        dataset,
        shells,
        TimelineConfig(
            duration_s=IDENTITY_DURATION_S,
            step_s=IDENTITY_STEP_S,
            oversubscription=SCENARIOS[1],
        ),
    )

    profile = get_profile("residential")
    churn = HandoverChurnModel()
    results = []
    for ratio in SCENARIOS:
        results.append(
            run_timeline(
                dataset,
                shells,
                TimelineConfig(
                    duration_s=86400.0,
                    step_s=DAY_STEP_S,
                    profile=profile,
                    churn=churn,
                    oversubscription=ratio,
                ),
            )
        )

    hour_rows = list(range(0, 24, GRID_HOUR_STEP))
    grid = np.zeros((len(hour_rows), len(SCENARIOS)))
    for col, result in enumerate(results):
        _, hourly = result.hourly_served_fraction()
        for row, hour in enumerate(hour_rows):
            bucket = hourly[hour : hour + GRID_HOUR_STEP]
            grid[row, col] = float(np.nanmean(bucket))
    grid_text = heat_grid(
        grid,
        row_labels=[f"{h:02d}h" for h in hour_rows],
        col_labels=[f"{r:.0f}" for r in SCENARIOS],
        title=(
            "served-location fraction by UTC hour (rows) x "
            "oversubscription (cols), residential profile"
        ),
        value_format="{:.3f}",
    )

    headers = (
        "oversub",
        "unserved_h_day_mean",
        "unserved_h_day_max",
        "outage_min_mean",
        "reconnections",
        "served_frac_min",
        "served_frac_max",
    )
    rows = []
    for ratio, result in zip(SCENARIOS, results):
        unserved = result.unserved_hours_per_day()
        rows.append(
            (
                f"{ratio:.0f}",
                f"{float(unserved.mean()):.2f}",
                f"{float(unserved.max()):.2f}",
                f"{float(result.outage_minutes().mean()):.2f}",
                int(result.reconnection_counts.sum()),
                f"{float(result.served_location_fraction.min()):.3f}",
                f"{float(result.served_location_fraction.max()):.3f}",
            )
        )
    table_lines = ["", "per-day QoE by oversubscription:"]
    table_lines.append("  ".join(headers))
    table_lines.extend("  ".join(str(v) for v in row) for row in rows)
    identity_line = (
        f"flat-profile differential (step {IDENTITY_STEP_S:.0f} s): "
        f"{'byte-identical to static pipeline' if identity.flat_identical else 'MISMATCH'}"
    )
    text = "\n".join([grid_text, *table_lines, "", identity_line])

    mid = results[len(SCENARIOS) // 2]
    mid_unserved = mid.unserved_hours_per_day()
    return ExperimentResult(
        experiment_id="timeline",
        title="Diurnal + churn timelines: unserved hours follow the busy hour",
        text=text,
        csv_headers=headers,
        csv_rows=rows,
        metrics={
            "cells": float(mid.cells),
            "steps_per_day": float(mid.steps),
            "flat_identical": float(bool(identity.flat_identical)),
            "unserved_hours_per_day_mean": float(mid_unserved.mean()),
            "unserved_hours_per_day_max": float(mid_unserved.max()),
            "outage_minutes_mean": float(mid.outage_minutes().mean()),
            "reconnections_total": float(mid.reconnection_counts.sum()),
            "served_fraction_min": float(
                mid.served_location_fraction.min()
            ),
            "served_fraction_mean": float(
                mid.served_location_fraction.mean()
            ),
        },
    )
