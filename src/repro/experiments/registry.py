"""Experiment result type and id -> runner registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.model import StarlinkDivideModel
from repro.errors import ReproError


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment: rendered text, CSV series, metrics."""

    experiment_id: str
    title: str
    text: str
    csv_headers: Sequence[str]
    csv_rows: Sequence[Sequence[object]]
    metrics: Dict[str, float]


#: Populated lazily to avoid import cycles between experiment modules.
_REGISTRY: Dict[str, Callable[[StarlinkDivideModel], ExperimentResult]] = {}


def _load_registry() -> Dict[str, Callable]:
    if not _REGISTRY:
        from repro.experiments import (
            baseline_comparison,
            defection_exp,
            equity_exp,
            figure1,
            figure2,
            figure3,
            figure4,
            gateways_exp,
            growth_exp,
            latency_exp,
            robustness,
            serving,
            table1,
            table2,
            tco,
            timeline_exp,
            uncertainty_exp,
            uplink,
            validation,
        )

        _REGISTRY.update(
            {
                "fig1": figure1.run,
                "tab1": table1.run,
                "fig2": figure2.run,
                "tab2": table2.run,
                "fig3": figure3.run,
                "fig4": figure4.run,
                "val": validation.run,
                "uplink": uplink.run,
                "gw": gateways_exp.run,
                "tco": tco.run,
                "robust": robustness.run,
                "latency": latency_exp.run,
                "growth": growth_exp.run,
                "baselines": baseline_comparison.run,
                "equity": equity_exp.run,
                "uncertainty": uncertainty_exp.run,
                "defection": defection_exp.run,
                "serve": serving.run,
                "timeline": timeline_exp.run,
            }
        )
    return _REGISTRY


def all_experiment_ids() -> List[str]:
    """Registered experiment ids, in paper order."""
    return list(_load_registry())


def get_experiment(experiment_id: str) -> Callable[[StarlinkDivideModel], ExperimentResult]:
    """The runner for one experiment id."""
    registry = _load_registry()
    if experiment_id not in registry:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(registry)}"
        )
    return registry[experiment_id]


def run_experiment(
    experiment_id: str, model: Optional[StarlinkDivideModel] = None
) -> ExperimentResult:
    """Run one experiment, building the default model if none is given."""
    runner = get_experiment(experiment_id)
    return runner(model or StarlinkDivideModel.default())


def run_experiment_metrics(
    experiment_id: str, model: Optional[StarlinkDivideModel] = None
) -> Dict[str, float]:
    """One experiment's headline metrics dict.

    The sweep runner's entry point into the registry: metrics are flat
    JSON scalars, so they cache and compare across processes directly.
    """
    return dict(run_experiment(experiment_id, model).metrics)
