"""Extension experiment: the uplink side of the paper's model.

Not a paper artifact — the paper explicitly models only the downlink.
This experiment applies the identical peak-demand-density argument to the
FCC definition's 20 Mbps uplink requirement and Starlink's 500 MHz UT
uplink allocation, showing the uplink binds roughly 3x harder.
"""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.core.uplink import UplinkAnalysis
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Compare downlink vs uplink servability of the national dataset."""
    analysis = UplinkAnalysis(model.dataset)
    downlink = model.oversubscription.finding1()
    comparison = analysis.comparison_table(downlink)
    rows = [
        (quantity, sides["downlink"], sides["uplink"])
        for quantity, sides in comparison.items()
    ]
    table = format_table(
        ("quantity", "downlink (paper)", "uplink (this extension)"),
        rows,
        title="Peak-demand-density model applied to both link directions",
    )
    uplink = analysis.summary()
    note = (
        "\nThe uplink budget (500 MHz at ~2.5 b/Hz) supports "
        f"{uplink['cell_capacity_mbps']:.0f} Mbps/cell against a peak-cell "
        f"demand of {uplink['peak_cell_demand_mbps']:.0f} Mbps — "
        f"{uplink['required_oversubscription']:.0f}:1 oversubscription, "
        "vs ~35:1 on the downlink the paper analyzes."
    )
    return ExperimentResult(
        experiment_id="uplink",
        title="Extension: uplink capacity under the same model",
        text=f"{table}\n{note}",
        csv_headers=("quantity", "downlink", "uplink"),
        csv_rows=rows,
        metrics={
            "uplink_required_oversubscription": uplink[
                "required_oversubscription"
            ],
            "uplink_cell_capacity_mbps": uplink["cell_capacity_mbps"],
            "uplink_unservable_at_20": uplink[
                "locations_unservable_at_acceptable"
            ],
            "uplink_service_fraction_at_20": uplink[
                "service_fraction_at_acceptable"
            ],
        },
    )
