"""Extension experiment: the distributional shape of the access gap."""

from __future__ import annotations

from repro.core.equity import EquityAnalysis
from repro.core.model import StarlinkDivideModel
from repro.econ.plans import STARLINK_RESIDENTIAL
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Income-decile table and concentration index."""
    analysis = EquityAnalysis(model.dataset)
    deciles = analysis.income_deciles()
    affordability = dict(analysis.affordability_by_decile(STARLINK_RESIDENTIAL))
    rows = [
        (
            row.decile,
            f"${row.income_low_usd:,.0f}-${row.income_high_usd:,.0f}",
            f"{row.locations:,}",
            f"{affordability.get(row.decile, 0.0):.0%}",
        )
        for row in deciles
    ]
    table = format_table(
        ("decile", "county income range", "locations", "can afford $120"),
        rows,
        title="Un(der)served locations by income decile (poorest first)",
    )
    index = analysis.concentration_index()
    note = (
        f"\nconcentration index {index:.2f} (0 = even over counties, "
        "positive = concentrated in poor counties): the access gap piles "
        "up exactly where Starlink's price bites hardest — the structural "
        "coupling behind F4."
    )
    return ExperimentResult(
        experiment_id="equity",
        title="Extension: socioeconomic distribution of the gap",
        text=f"{table}{note}",
        csv_headers=("decile", "income_low", "income_high", "locations"),
        csv_rows=[
            (r.decile, f"{r.income_low_usd:.0f}", f"{r.income_high_usd:.0f}", r.locations)
            for r in deciles
        ],
        metrics={
            "concentration_index": index,
            "bottom_decile_locations": deciles[0].locations,
            "deciles": len(deciles),
        },
    )
