"""Figure 2: impact of beamspread and oversubscription on cells served."""

from __future__ import annotations

import numpy as np

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.viz.textplot import heat_grid

OVERSUBSCRIPTIONS = tuple(range(5, 31))
BEAMSPREADS = tuple(range(2, 15))


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Regenerate Fig 2's fraction-of-cells-served heat grid."""
    grid = model.figure2_grid(OVERSUBSCRIPTIONS, BEAMSPREADS)
    rendering = heat_grid(
        grid,
        row_labels=BEAMSPREADS,
        col_labels=OVERSUBSCRIPTIONS,
        title=(
            "Figure 2: fraction of US cells served "
            "(rows: beamspread, cols: oversubscription)"
        ),
    )
    rows = []
    for i, spread in enumerate(BEAMSPREADS):
        for j, ratio in enumerate(OVERSUBSCRIPTIONS):
            rows.append((spread, ratio, f"{grid[i, j]:.6f}"))
    return ExperimentResult(
        experiment_id="fig2",
        title="Figure 2: fraction of cells served vs oversub x beamspread",
        text=rendering,
        csv_headers=("beamspread", "oversubscription", "fraction_served"),
        csv_rows=rows,
        metrics={
            "min_fraction": float(grid.min()),
            "max_fraction": float(grid.max()),
            "fraction_at_s2_r20": float(
                grid[BEAMSPREADS.index(2), OVERSUBSCRIPTIONS.index(20)]
            ),
        },
    )
