"""Figure 1: distribution of un(der)served locations per service cell."""

from __future__ import annotations

import numpy as np

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.viz.textmap import density_map
from repro.viz.textplot import line_plot

PAPER_P90 = 552
PAPER_P99 = 1437
PAPER_MAX = 5998


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Regenerate Fig 1's CDF and its annotated percentiles."""
    stats = model.figure1_distribution()
    grid, cdf = model.figure1_cdf()
    us_map = density_map(
        model.dataset,
        title=(
            "Figure 1 (map panel): un(der)served locations per Starlink "
            "service cell"
        ),
    )
    plot = line_plot(
        grid,
        [("CDF", cdf)],
        title="Figure 1: CDF of US un(der)served locations per service cell",
        x_label="locations per cell",
        y_label="cumulative probability",
    )
    annotations = (
        f"90th percentile: {stats['p90']:.0f} locations/cell "
        f"(paper: {PAPER_P90})\n"
        f"99th percentile: {stats['p99']:.0f} locations/cell "
        f"(paper: {PAPER_P99})\n"
        f"max density: {stats['max']:.0f} locations/cell "
        f"(paper: {PAPER_MAX})\n"
        f"{stats['cells']:,.0f} occupied cells, "
        f"{stats['total_locations']:,.0f} locations total"
    )
    rows = [
        (f"{x:.1f}", f"{y:.6f}") for x, y in zip(grid.tolist(), cdf.tolist())
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Figure 1: locations per cell distribution",
        text=f"{us_map}\n\n{plot}\n\n{annotations}",
        csv_headers=("locations_per_cell", "cumulative_probability"),
        csv_rows=rows,
        metrics={
            "p90": stats["p90"],
            "p99": stats["p99"],
            "max": stats["max"],
            "cells": stats["cells"],
            "total_locations": stats["total_locations"],
        },
    )
