"""Extension experiment: error bars on Table 2.

The paper's constellation sizes are point estimates built on three
uncertain inputs (spectral efficiency, cell-area identification, binding
latitude). This experiment propagates plausible ranges through the model
and reports p5/p50/p95 bands — how firm "more than 40,000 satellites"
really is.
"""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.core.uncertainty import SizingUncertainty
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Uncertainty bands for the full-service Table 2 column."""
    uncertainty = SizingUncertainty(model.dataset, samples=96)
    bands = uncertainty.table((1, 2, 5, 10, 15))
    rows = [
        (
            int(spread),
            f"{band.p5:,.0f}",
            f"{band.p50:,.0f}",
            f"{band.p95:,.0f}",
            f"{band.point_estimate:,}",
        )
        for spread, band in bands.items()
    ]
    table = format_table(
        ("beamspread", "p5", "p50", "p95", "point estimate"),
        rows,
        title=(
            "Constellation size under input uncertainty "
            "(efficiency 4.0-5.0 b/Hz, cell area x0.8-1.25, latitude +/-1.5 deg)"
        ),
    )
    band2 = bands[2]
    note = (
        f"\nEven at the 5th percentile, beamspread 2 needs "
        f"{band2.p5:,.0f} satellites — F2's '>40,000' (more than 32,000 "
        "additional) claim survives the input uncertainty"
        if band2.p5 > 30000
        else "\nNote: the low tail dips below the paper's headline."
    )
    return ExperimentResult(
        experiment_id="uncertainty",
        title="Extension: error bars on Table 2",
        text=f"{table}{note}",
        csv_headers=("beamspread", "p5", "p50", "p95", "point"),
        csv_rows=[
            (int(s), f"{b.p5:.0f}", f"{b.p50:.0f}", f"{b.p95:.0f}", b.point_estimate)
            for s, b in bands.items()
        ],
        metrics={
            "s2_p5": band2.p5,
            "s2_p50": band2.p50,
            "s2_p95": band2.p95,
            "s2_point": band2.point_estimate,
        },
    )
