"""Extension experiment: the economics behind F3's diminishing returns.

Prices Table 2's constellations and Figure 3's final step with the
constellation cost model, and contrasts the marginal cost of the LEO long
tail with the terrestrial fiber baseline's remote-location costs — the
quantitative form of the paper's 'just another stone' argument.
"""

from __future__ import annotations

from repro.baselines.fiber import FiberBuildModel
from repro.core.model import StarlinkDivideModel
from repro.core.sizing import DeploymentScenario
from repro.econ.tco import ConstellationCostModel
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Cost out the constellation and the long tail's final step."""
    costs = ConstellationCostModel()
    served = model.oversubscription.stats(20.0).locations_served

    rows = []
    for spread in (1, 2, 5, 10, 15):
        sizing = model.sizer.size_scenario(
            DeploymentScenario.MAX_ACCEPTABLE_OVERSUBSCRIPTION, spread
        )
        n = sizing.constellation_size
        rows.append(
            (
                spread,
                f"{n:,}",
                f"${costs.constellation_capex_usd(n) / 1e9:.1f}B",
                f"${costs.monthly_cost_per_location_usd(n, served):.0f}",
            )
        )
    capex_table = format_table(
        ("beamspread", "satellites", "capex", "floor $/location-month"),
        rows,
        title=(
            "Constellation cost if US un(der)served locations alone paid "
            "for it (max 20:1)"
        ),
    )

    fiber = FiberBuildModel()
    step_rows = []
    for spread in (1, 2, 5, 10, 15):
        step = model.tail.final_step_cost(20.0, spread)
        marginal = costs.marginal_summary(
            step["additional_satellites"], step["locations_gained"]
        )
        step_rows.append(
            (
                spread,
                f"{step['additional_satellites']:,}",
                f"${marginal['capex_per_location_usd']:,.0f}",
                f"${marginal['monthly_cost_per_location_usd']:,.0f}",
            )
        )
    # Fiber cost for a very sparse cell (1 location in a res-5 cell).
    remote_fiber = fiber.cost_per_location_usd(1.0 / 252.9)
    step_table = format_table(
        ("beamspread", "extra satellites", "capex/location", "$/location-month"),
        step_rows,
        title="Marginal economics of Figure 3's final step (last ~8k locations)",
    )
    note = (
        f"\nremote-fiber reference: ~${remote_fiber:,.0f} one-time per "
        "location for the sparsest cells — the long tail is expensive for "
        "every technology, LEO included (the paper's 'just another stone')."
    )
    metrics = {
        "capex_s1_busd": costs.constellation_capex_usd(
            model.sizer.size_scenario(
                DeploymentScenario.MAX_ACCEPTABLE_OVERSUBSCRIPTION, 1
            ).constellation_size
        )
        / 1e9,
        "final_step_capex_per_location_s1": ConstellationCostModel()
        .marginal_summary(
            model.tail.final_step_cost(20.0, 1)["additional_satellites"],
            model.tail.final_step_cost(20.0, 1)["locations_gained"],
        )["capex_per_location_usd"],
        "remote_fiber_per_location": remote_fiber,
    }
    return ExperimentResult(
        experiment_id="tco",
        title="Extension: constellation cost of the long tail",
        text=f"{capex_table}\n\n{step_table}{note}",
        csv_headers=("beamspread", "satellites", "capex_usd", "per_location_month_usd"),
        csv_rows=rows,
        metrics=metrics,
    )
