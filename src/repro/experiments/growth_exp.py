"""Extension experiment: capacity pressure along the adoption curve.

The paper's best-case analysis assumes everyone subscribes at once. This
experiment adds time: under Bass-diffusion adoption, when does the peak
cell first need more than the FCC's 20:1 benchmark, and how does the
population of over-cap cells grow?
"""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.demand.growth import BassDiffusion, GrowthAnalysis
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table

TIMELINE_YEARS = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0)


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Adoption timeline for the national dataset."""
    analysis = GrowthAnalysis(model.dataset)
    rows = []
    for entry in analysis.timeline(list(TIMELINE_YEARS)):
        rows.append(
            (
                f"{entry['year']:.0f}",
                f"{entry['adoption']:.1%}",
                f"{entry['subscribers'] / 1e6:.2f}M",
                f"{entry['peak_oversubscription']:.1f}:1",
                entry["cells_over_cap"],
            )
        )
    table = format_table(
        ("year", "adoption", "subscribers", "peak oversub", "cells >20:1"),
        rows,
        title="Bass-diffusion adoption vs the capacity model (p=0.03, q=0.4)",
    )
    binds_at = analysis.years_until_peak_cell_binds()
    note = (
        f"\nThe peak cell first exceeds the 20:1 benchmark after "
        f"{binds_at:.1f} years at {analysis.diffusion.adoption(binds_at):.0%} "
        "adoption — the paper's steady-state tension appears well before "
        "full take-up."
    )
    return ExperimentResult(
        experiment_id="growth",
        title="Extension: adoption dynamics vs capacity",
        text=f"{table}{note}",
        csv_headers=(
            "year",
            "adoption",
            "subscribers",
            "peak_oversubscription",
            "cells_over_cap",
        ),
        csv_rows=[
            (
                entry["year"],
                f"{entry['adoption']:.6f}",
                int(entry["subscribers"]),
                f"{entry['peak_oversubscription']:.3f}",
                entry["cells_over_cap"],
            )
            for entry in analysis.timeline(list(TIMELINE_YEARS))
        ],
        metrics={
            "years_until_peak_binds": binds_at,
            "adoption_at_bind": analysis.diffusion.adoption(binds_at),
            "final_cells_over_cap": analysis.cells_over_cap_at(15.0),
        },
    )
