"""Serving-layer equivalence: indexed service answers vs the batch pipeline.

Not a paper figure — an infrastructure experiment in the spirit of the
validation module: build the :mod:`repro.serve` index over a regional
slice of the dataset, sweep a few scenarios through the engine's
epoch-swap path, and check the service's aggregate and sampled point
answers against the batch pipeline's scalar reference at each epoch.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core.model import StarlinkDivideModel
from repro.core.oversubscription import OversubscriptionAnalysis
from repro.demand.locations import explode_cells_table
from repro.experiments.registry import ExperimentResult
from repro.serve import (
    QueryEngine,
    ScenarioParams,
    build_index,
    reference_point_answer,
)
from repro.viz.tables import format_table

#: Oversubscription ratios swept through the engine's update path.
SCENARIOS = (10.0, 20.0, 35.0)

#: The Appalachian subset the simulation tests use — big enough to span
#: many cells and counties, small enough to explode in milliseconds.
REGION_BBOX = (37.0, 38.5, -83.5, -81.0)

#: Point queries differentially checked per scenario.
SAMPLE_POINTS = 8


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Prove service == batch over a scenario sweep on a regional index."""
    dataset = model.dataset.subset_bbox(*REGION_BBOX, "serving region")
    table = explode_cells_table(dataset, seed=0)
    analysis = OversubscriptionAnalysis(dataset)
    engine = QueryEngine(
        build_index(
            table,
            dataset,
            ScenarioParams(oversubscription=SCENARIOS[0]),
            target_shard_rows=4096,
        )
    )
    rng = np.random.default_rng(7)
    sample_ids = rng.choice(
        table.location_id, size=min(SAMPLE_POINTS, len(table)), replace=False
    )
    rows = []
    all_equal = True
    for epoch_target, ratio in enumerate(SCENARIOS):
        params = ScenarioParams(oversubscription=ratio)
        if epoch_target:
            asyncio.run(engine.update_params(params))
        stats = engine.stats()
        batch = analysis.stats(ratio)
        point_mismatches = 0
        answers = engine.point_by_id(sample_ids)
        for i, location_id in enumerate(sample_ids):
            reference = reference_point_answer(
                table, dataset, int(location_id), params=params
            )
            got = {
                key: (value[i] if isinstance(value, list) else value)
                for key, value in answers.items()
                if key not in ("epoch", "scenario_id")
            }
            point_mismatches += int(got != reference)
        equal = (
            stats["locations_served"] == batch.locations_served
            and stats["cells_fully_served"] == batch.cells_fully_served
            and point_mismatches == 0
        )
        all_equal = all_equal and equal
        rows.append(
            (
                f"{ratio:.0f}",
                stats["epoch"],
                batch.locations_served,
                stats["locations_served"],
                batch.cells_fully_served,
                stats["cells_fully_served"],
                point_mismatches,
                "yes" if equal else "NO",
            )
        )
    headers = (
        "oversub",
        "epoch",
        "batch_served",
        "serve_served",
        "batch_full_cells",
        "serve_full_cells",
        "point_mismatches",
        "equal",
    )
    text = format_table(
        headers,
        rows,
        title=(
            f"serving index vs batch pipeline "
            f"({len(table)} locations, {engine.index.n_cells} cells, "
            f"{len(engine.index.store.shards)} shards)"
        ),
    )
    return ExperimentResult(
        experiment_id="serve",
        title="Serving index: point/aggregate answers equal the batch pipeline",
        text=text,
        csv_headers=headers,
        csv_rows=rows,
        metrics={
            "locations": float(len(table)),
            "cells": float(engine.index.n_cells),
            "shards": float(len(engine.index.store.shards)),
            "scenarios": float(len(SCENARIOS)),
            "final_epoch": float(engine.epoch),
            "all_equal": float(all_equal),
        },
    )
