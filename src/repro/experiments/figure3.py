"""Figure 3: constellation size vs locations left unserved (step curves)."""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.viz.textplot import step_plot

#: The paper's six (beamspread, oversubscription) lines.
LINES = ((1, 20), (2, 20), (5, 20), (5, 15), (10, 20), (15, 20))


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Regenerate Fig 3's stepped diminishing-returns curves."""
    curves = model.figure3_curves(LINES)
    series = []
    rows = []
    for (spread, ratio), points in curves.items():
        label = f"s={spread},r={ratio}"
        series.append(
            (
                label,
                [(p.locations_unserved, p.constellation_size) for p in points],
            )
        )
        for p in points:
            rows.append(
                (
                    spread,
                    ratio,
                    p.per_cell_cap,
                    p.locations_unserved,
                    p.peak_cell_beams,
                    p.constellation_size,
                )
            )
    plot = step_plot(
        series,
        title=(
            "Figure 3: constellation size vs locations left unserved "
            "(steps at beam boundaries)"
        ),
        x_label="locations left unserved",
        y_label="constellation size",
    )
    # The final-step sweep rides the runner (serial, in-process), the
    # same path `repro-divide sweep tail` exercises from the CLI.
    from repro.runner import ParameterGrid, SweepRunner

    report = SweepRunner(
        "tail",
        ParameterGrid(
            {"beamspread": (1, 2, 5, 10, 15), "oversubscription": (20,)}
        ),
    ).run(model=model)
    final_steps = {
        int(r.params["beamspread"]): r.metrics for r in report.results
    }
    notes = "\n".join(
        f"s={spread}: the final step serves "
        f"{cost['locations_gained']:,} locations for "
        f"{cost['additional_satellites']:,} extra satellites"
        for spread, cost in final_steps.items()
    )
    floor = final_steps[1]["floor_unservable"]
    notes += (
        f"\nwith max oversubscription of 20:1, the last {floor:,} "
        "locations cannot be served at all (paper: 5103)"
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3: diminishing returns of serving the tail",
        text=f"{plot}\n\n{notes}",
        csv_headers=(
            "beamspread",
            "oversubscription",
            "per_cell_cap",
            "locations_unserved",
            "peak_cell_beams",
            "constellation_size",
        ),
        csv_rows=rows,
        metrics={
            "floor_unservable": floor,
            "final_step_satellites_s1": final_steps[1]["additional_satellites"],
            "final_step_satellites_s15": final_steps[15]["additional_satellites"],
        },
    )
