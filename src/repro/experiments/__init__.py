"""Experiment registry: one module per paper table/figure.

Each experiment takes a :class:`~repro.core.model.StarlinkDivideModel` and
returns an :class:`ExperimentResult` carrying rendered text, CSV series,
and headline metrics. ``python -m repro run fig1`` etc. drive these from
the command line; the benchmark suite regenerates each one per run.
"""

from repro.experiments.registry import (
    ExperimentResult,
    all_experiment_ids,
    get_experiment,
    run_experiment,
    run_experiment_metrics,
)

__all__ = [
    "ExperimentResult",
    "all_experiment_ids",
    "get_experiment",
    "run_experiment",
    "run_experiment_metrics",
]
