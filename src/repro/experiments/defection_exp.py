"""Extension experiment: relaxing the paper's best-case assumption.

The paper ignores demand from already-served households. Here a fraction
of the served population defects to Starlink, and the capacity model is
re-run: how fast do the peak-cell oversubscription and the 20:1
unservable floor deteriorate?
"""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.demand.served import DefectionAnalysis
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table

DEFECTION_LEVELS = (0.0, 0.01, 0.02, 0.05, 0.10, 0.20)


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Sweep terrestrial-defection levels over the national dataset."""
    analysis = DefectionAnalysis(model.dataset)
    rows = []
    for entry in analysis.sweep(DEFECTION_LEVELS):
        rows.append(
            (
                f"{entry['defection_fraction']:.0%}",
                f"{entry['extra_subscribers'] / 1e6:.2f}M",
                f"{entry['peak_cell_load']:,.0f}",
                f"{entry['required_oversubscription']:.1f}:1",
                f"{entry['unservable_at_20']:,.0f}",
            )
        )
    table = format_table(
        (
            "defection",
            "extra subscribers",
            "peak cell load",
            "peak oversub",
            "unservable @20:1",
        ),
        rows,
        title=(
            "Terrestrial households defecting to Starlink "
            "(the paper's best-case caveat, quantified)"
        ),
    )
    doubling = analysis.defection_that_doubles_floor()
    note = (
        f"\nThe 20:1 unservable floor doubles at just "
        f"{doubling:.1%} defection — the paper's numbers really are a "
        "best case."
    )
    baseline = analysis.summary_at(0.0)
    worst = analysis.summary_at(DEFECTION_LEVELS[-1])
    return ExperimentResult(
        experiment_id="defection",
        title="Extension: terrestrial defection stress test",
        text=f"{table}{note}",
        csv_headers=(
            "defection_fraction",
            "extra_subscribers",
            "peak_cell_load",
            "required_oversubscription",
            "unservable_at_20",
        ),
        csv_rows=[
            (
                f"{e['defection_fraction']:.3f}",
                int(e["extra_subscribers"]),
                int(e["peak_cell_load"]),
                f"{e['required_oversubscription']:.2f}",
                int(e["unservable_at_20"]),
            )
            for e in analysis.sweep(DEFECTION_LEVELS)
        ],
        metrics={
            "doubling_defection": doubling,
            "baseline_floor": baseline["unservable_at_20"],
            "floor_at_20pct": worst["unservable_at_20"],
            "peak_oversub_at_20pct": worst["required_oversubscription"],
        },
    )
