"""Robustness experiment: headline results across synthetic-map seeds.

The synthetic map is calibrated to published *statistics*; everything not
pinned by an anchor (cell placement, county layout, which counties are
poor) varies with the seed. This experiment regenerates smaller maps
under several seeds and shows the headline results barely move —
quantifying that the reproduction rests on the calibration targets, not
on any single random layout.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.model import StarlinkDivideModel
from repro.core.sizing import DeploymentScenario
from repro.demand.synthetic import SyntheticMapConfig, generate_national_map
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table

SWEEP_SEEDS = (11, 22, 33, 44, 55)
SWEEP_TOTAL_LOCATIONS = 400_000


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Sweep seeds; report spread of the headline metrics.

    The passed-in model provides the reference (default-seed) row; sweep
    rows use quarter-scale maps for speed, which changes absolute counts
    but not the ratio/shape metrics compared here.
    """
    rows = []
    fractions: List[float] = []
    sizes: List[int] = []
    shares: List[float] = []
    for seed in SWEEP_SEEDS:
        config = SyntheticMapConfig(
            seed=seed, total_locations=SWEEP_TOTAL_LOCATIONS
        )
        swept = StarlinkDivideModel(generate_national_map(config))
        f1 = swept.oversubscription.finding1()
        sizing = swept.sizer.size_scenario(
            DeploymentScenario.MAX_ACCEPTABLE_OVERSUBSCRIPTION, 2
        )
        f4 = swept.affordability.finding4()
        fractions.append(f1["service_fraction_at_acceptable"])
        sizes.append(sizing.constellation_size)
        shares.append(f4["unaffordable_starlink_share"])
        rows.append(
            (
                seed,
                f"{f1['required_oversubscription']:.1f}:1",
                f"{f1['service_fraction_at_acceptable']:.2%}",
                f"{sizing.constellation_size:,}",
                f"{f4['unaffordable_starlink_share']:.1%}",
            )
        )
    table = format_table(
        (
            "seed",
            "peak oversub",
            "served @20:1",
            "N @ s=2 (20:1)",
            "can't afford $120",
        ),
        rows,
        title=(
            f"Headline metrics across seeds ({SWEEP_TOTAL_LOCATIONS:,}-location maps)"
        ),
    )
    size_spread = (max(sizes) - min(sizes)) / float(np.mean(sizes))
    share_spread = max(shares) - min(shares)
    note = (
        f"\nconstellation-size spread across seeds: {size_spread:.1%}; "
        f"affordability-share spread: {share_spread:.1%} — the conclusions "
        "are properties of the calibration anchors, not of a lucky layout."
    )
    return ExperimentResult(
        experiment_id="robust",
        title="Extension: seed-robustness of the headline results",
        text=f"{table}{note}",
        csv_headers=(
            "seed",
            "service_fraction",
            "constellation_s2",
            "unaffordable_share",
        ),
        csv_rows=[
            (seed, f"{frac:.6f}", size, f"{share:.6f}")
            for seed, frac, size, share in zip(
                SWEEP_SEEDS, fractions, sizes, shares
            )
        ],
        metrics={
            "size_spread": size_spread,
            "share_spread": share_spread,
            "mean_size_s2": float(np.mean(sizes)),
        },
    )
