"""Table 1: Starlink single-satellite capacity model."""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.spectrum.bands import (
    SCHEDULE_S_BANDS,
    total_downlink_beams,
    total_downlink_spectrum_mhz,
    ut_downlink_beams,
    ut_downlink_spectrum_mhz,
)
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Regenerate both halves of the paper's Table 1."""
    band_rows = [
        (
            f"{b.low_ghz:.1f}-{b.high_ghz:.2f} GHz ({b.width_mhz:.0f} MHz)",
            b.beams,
            b.usage.value,
        )
        for b in SCHEDULE_S_BANDS
    ]
    band_rows.append(
        (
            f"Total to UTs / Cells ({ut_downlink_spectrum_mhz():.0f}/"
            f"{total_downlink_spectrum_mhz():.0f} MHz)",
            f"{ut_downlink_beams()}/{total_downlink_beams()}",
            "",
        )
    )
    bands_table = format_table(
        ("Band", "# Beams", "Usage"), band_rows, title="Schedule S bands"
    )

    derived = model.table1()
    derived_table = format_table(
        ("Parameter", "Value"),
        list(derived.items()),
        title="Starlink Single Satellite Capacity Model",
    )

    capacity = model.capacity
    peak = model.dataset.max_cell().total_locations
    return ExperimentResult(
        experiment_id="tab1",
        title="Table 1: single satellite capacity model",
        text=f"{bands_table}\n\n{derived_table}",
        csv_headers=("parameter", "value"),
        csv_rows=list(derived.items()),
        metrics={
            "ut_spectrum_mhz": ut_downlink_spectrum_mhz(),
            "cell_capacity_mbps": capacity.cell_capacity_mbps,
            "peak_cell_locations": peak,
            "max_oversubscription": capacity.required_oversubscription(peak),
        },
    )
