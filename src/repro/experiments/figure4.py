"""Figure 4: un(der)served locations unable to afford service."""

from __future__ import annotations

import numpy as np

from repro.core.model import StarlinkDivideModel
from repro.econ.thresholds import AFFORDABILITY_INCOME_SHARE
from repro.experiments.registry import ExperimentResult
from repro.viz.textplot import line_plot


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Regenerate Fig 4's affordability curves and the 2 % annotations."""
    curves = model.figure4_curves()
    shares = curves[0].income_shares
    series = [
        (c.plan.name, c.unaffordable_locations / 1e6) for c in curves
    ]
    plot = line_plot(
        shares,
        series,
        title="Figure 4: locations unable to afford service (millions)",
        x_label="proportion of median income",
        y_label="locations unable to afford (M)",
    )
    at_threshold = {
        c.plan.name: c.at_share(AFFORDABILITY_INCOME_SHARE) for c in curves
    }
    notes = "\n".join(
        f"at the 2% threshold, {name}: {count / 1e6:.2f}M locations "
        "priced out"
        for name, count in at_threshold.items()
    )
    intercepts = {c.plan.name: c.zero_crossing_share for c in curves}
    notes += "\nzero crossings: " + ", ".join(
        f"{name}={share:.3f}" for name, share in intercepts.items()
    )
    rows = []
    for c in curves:
        for share, count in zip(
            c.income_shares.tolist(), c.unaffordable_locations.tolist()
        ):
            rows.append((c.plan.name, f"{share:.4f}", int(count)))
    starlink = next(c for c in curves if c.plan.name == "Starlink Residential")
    lifeline = next(c for c in curves if "Lifeline" in c.plan.name)
    return ExperimentResult(
        experiment_id="fig4",
        title="Figure 4: affordability of plans",
        text=f"{plot}\n\n{notes}",
        csv_headers=("plan", "income_share", "unaffordable_locations"),
        csv_rows=rows,
        metrics={
            "unaffordable_starlink_at_2pct": starlink.at_share(0.02),
            "unaffordable_lifeline_at_2pct": lifeline.at_share(0.02),
            "starlink_zero_crossing": starlink.zero_crossing_share,
            "lifeline_zero_crossing": lifeline.zero_crossing_share,
        },
    )
