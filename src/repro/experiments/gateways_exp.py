"""Extension experiment: bent-pipe gateway coverage of the US.

Not a paper artifact. The paper's operational model requires every
serving satellite to reach a gateway (directly for bent-pipe satellites).
This experiment quantifies that constraint over CONUS: how much of the
un(der)served demand a realistic gateway deployment reaches in bent-pipe
mode, how the reach radius moves with shell altitude, and the greedy
minimum gateway subset for full coverage.
"""

from __future__ import annotations

from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.core.bentpipe import BentPipeAnalysis
from repro.orbits.gateways import DEFAULT_CONUS_GATEWAYS, bent_pipe_reach_km
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Bent-pipe coverage summary for the default gateway deployment."""
    analysis = BentPipeAnalysis(model.dataset)
    summary = analysis.coverage_summary()
    minimal = analysis.greedy_minimum_gateways()

    altitude_rows = [
        (f"{altitude:.0f} km", f"{bent_pipe_reach_km(altitude):.0f} km")
        for altitude in (340.0, 550.0, 570.0, 1150.0)
    ]
    reach_table = format_table(
        ("shell altitude", "max UT-gateway distance"),
        altitude_rows,
        title="Bent-pipe reach vs shell altitude (25 deg UT / 10 deg GW masks)",
    )
    coverage_rows = [
        ("gateway sites", summary["gateways"]),
        ("bent-pipe reach", f"{summary['reach_km']:.0f} km"),
        ("cells reachable", f"{summary['cells_reachable']:,} of {summary['cells_total']:,}"),
        ("cell fraction", f"{summary['cell_fraction']:.2%}"),
        ("location fraction", f"{summary['location_fraction']:.2%}"),
        ("greedy minimum sites for full coverage", len(minimal)),
    ]
    coverage_table = format_table(
        ("quantity", "value"),
        coverage_rows,
        title="Bent-pipe coverage of US un(der)served demand at 550 km",
    )
    minimal_names = ", ".join(g.name for g in minimal)
    note = f"\ngreedy minimum subset: {minimal_names}"
    return ExperimentResult(
        experiment_id="gw",
        title="Extension: bent-pipe gateway coverage",
        text=f"{reach_table}\n\n{coverage_table}{note}",
        csv_headers=("quantity", "value"),
        csv_rows=[(k, str(v)) for k, v in coverage_rows],
        metrics={
            "cell_fraction": summary["cell_fraction"],
            "location_fraction": summary["location_fraction"],
            "reach_km": summary["reach_km"],
            "minimum_gateways": len(minimal),
        },
    )
