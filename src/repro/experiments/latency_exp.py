"""Extension experiment: propagation latency, bent-pipe vs ISL vs GEO.

Quantifies the latency claim in the paper's Section 2 narrative — LEO's
~33,000 km orbit advantage over GEO — with the actual constellation
geometry: per-cell best-path propagation RTT through the Gen1 shell 1,
for both of the paper's operating modes, against the GEO baseline and the
FCC's 100 ms low-latency cutoff.
"""

from __future__ import annotations

from repro.baselines.geostationary import GeostationaryModel
from repro.core.latency import LatencyAnalysis
from repro.core.model import StarlinkDivideModel
from repro.experiments.registry import ExperimentResult
from repro.orbits.shells import GEN1_SHELLS
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """Latency survey over a deterministic sample of demand cells."""
    analysis = LatencyAnalysis(model.dataset, GEN1_SHELLS[0])
    summary = analysis.summary(max_cells=400)
    geo_rtt = GeostationaryModel.propagation_rtt_ms()

    rows = [
        ("cells sampled", f"{summary['cells_sampled']:,}"),
        ("bent-pipe reachable", f"{summary['bent_pipe_fraction']:.1%}"),
        ("propagation RTT p50", f"{summary['rtt_ms_p50']:.1f} ms"),
        ("propagation RTT p95", f"{summary['rtt_ms_p95']:.1f} ms"),
        ("propagation RTT max", f"{summary['rtt_ms_max']:.1f} ms"),
        ("meets FCC 100 ms cutoff", str(summary["meets_fcc_low_latency"])),
        ("GEO baseline RTT", f"{geo_rtt:.0f} ms"),
    ]
    table = format_table(
        ("quantity", "value"),
        rows,
        title="Propagation latency over Gen1 shell 1 (550 km, 53 deg)",
    )
    return ExperimentResult(
        experiment_id="latency",
        title="Extension: LEO latency vs the GEO baseline",
        text=table,
        csv_headers=("quantity", "value"),
        csv_rows=rows,
        metrics={
            "rtt_ms_p50": summary["rtt_ms_p50"],
            "rtt_ms_max": summary["rtt_ms_max"],
            "bent_pipe_fraction": summary["bent_pipe_fraction"],
            "geo_rtt_ms": geo_rtt,
        },
    )
