"""Extension experiment: LEO vs the baseline access technologies.

The quantitative version of the paper's P1/P2 discussion and its "game of
stones" conclusion: for the same national un(der)served demand, what does
each technology's deployment look like, what does it cost, and where does
its constraint bind?
"""

from __future__ import annotations

from repro.baselines.fiber import FiberBuildModel
from repro.baselines.fixed_wireless import FixedWirelessModel
from repro.baselines.geostationary import GeostationaryModel
from repro.core.model import StarlinkDivideModel
from repro.core.sizing import DeploymentScenario
from repro.econ.tco import ConstellationCostModel
from repro.experiments.registry import ExperimentResult
from repro.viz.tables import format_table


def run(model: StarlinkDivideModel) -> ExperimentResult:
    """One row per technology over the same national dataset."""
    dataset = model.dataset
    leo_sizing = model.sizer.size_scenario(
        DeploymentScenario.MAX_ACCEPTABLE_OVERSUBSCRIPTION, 2
    )
    leo_cost = ConstellationCostModel().constellation_capex_usd(
        leo_sizing.constellation_size
    )
    fiber = FiberBuildModel().dataset_cost(dataset)
    wireless = FixedWirelessModel().dataset_deployment(dataset)
    geo = GeostationaryModel().satellites_for_dataset(dataset)

    rows = [
        (
            "LEO (Starlink model, s=2)",
            f"{leo_sizing.constellation_size:,} satellites",
            f"${leo_cost / 1e9:.0f}B",
            "peak demand density (P2)",
        ),
        (
            "FTTH build-out",
            "fiber to every location",
            f"${fiber['total_cost_usd'] / 1e9:.0f}B",
            "distance to the long tail (P1)",
        ),
        (
            "Fixed wireless",
            f"{wireless['towers']:,} towers",
            f"${wireless['total_cost_usd'] / 1e9:.0f}B",
            "coverage area per tower",
        ),
        (
            "GEO satellite",
            f"{geo['satellites']} satellites",
            "(fails 100 ms latency)",
            f"total demand; RTT {geo['propagation_rtt_ms']:.0f} ms",
        ),
    ]
    table = format_table(
        ("technology", "deployment", "capex", "binding constraint"),
        rows,
        title="Serving the same 4.66M un(der)served locations, by technology",
    )
    note = (
        "\nEach stone has a different shape: LEO's size is set by its"
        " densest cell, fiber's by its remotest home, fixed wireless'"
        " by area, GEO's by total demand (but it fails the latency bar)."
    )
    return ExperimentResult(
        experiment_id="baselines",
        title="Extension: baseline technology comparison",
        text=f"{table}{note}",
        csv_headers=("technology", "deployment", "capex_usd", "constraint"),
        csv_rows=rows,
        metrics={
            "leo_satellites": leo_sizing.constellation_size,
            "leo_capex_usd": leo_cost,
            "fiber_capex_usd": fiber["total_cost_usd"],
            "wireless_towers": wireless["towers"],
            "geo_satellites": geo["satellites"],
        },
    )
