"""Physical constants and unit-conversion helpers.

The library works internally in SI-adjacent network units:

* spectrum in **MHz**
* data rates in **Mbps** (1 Gbps = 1000 Mbps)
* distances in **km**
* angles in **radians** unless a name says otherwise
* money in **USD**

The helpers here exist so that call sites read as physics, not as magic
numbers (``gbps(17.3)`` instead of ``17300.0``).
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Earth and orbital constants
# ---------------------------------------------------------------------------

#: Mean Earth radius in km (IUGG mean radius R1).
EARTH_RADIUS_KM = 6371.0088

#: Earth surface area in km^2 (sphere of mean radius).
EARTH_SURFACE_AREA_KM2 = 4.0 * math.pi * EARTH_RADIUS_KM**2

#: Standard gravitational parameter of Earth, km^3 / s^2.
EARTH_MU_KM3_S2 = 398600.4418

#: Earth's sidereal rotation rate, rad/s.
EARTH_ROTATION_RAD_S = 7.2921150e-5

#: Sidereal day length in seconds.
SIDEREAL_DAY_S = 2.0 * math.pi / EARTH_ROTATION_RAD_S

#: Speed of light, km/s.
SPEED_OF_LIGHT_KM_S = 299792.458

#: Boltzmann constant in dBW/K/Hz (for link budgets).
BOLTZMANN_DBW_PER_K_HZ = -228.599

# ---------------------------------------------------------------------------
# Data-rate helpers (canonical unit: Mbps)
# ---------------------------------------------------------------------------


def mbps(value: float) -> float:
    """Return ``value`` megabits/s expressed in the canonical rate unit."""
    return float(value)


def gbps(value: float) -> float:
    """Return ``value`` gigabits/s expressed in Mbps."""
    return float(value) * 1000.0


def as_gbps(rate_mbps: float) -> float:
    """Convert a canonical Mbps rate to Gbps for display."""
    return rate_mbps / 1000.0


# ---------------------------------------------------------------------------
# Spectrum helpers (canonical unit: MHz)
# ---------------------------------------------------------------------------


def mhz(value: float) -> float:
    """Return ``value`` MHz expressed in the canonical spectrum unit."""
    return float(value)


def ghz(value: float) -> float:
    """Return ``value`` GHz expressed in MHz."""
    return float(value) * 1000.0


def as_ghz(width_mhz: float) -> float:
    """Convert a canonical MHz width to GHz for display."""
    return width_mhz / 1000.0


# ---------------------------------------------------------------------------
# Angle helpers
# ---------------------------------------------------------------------------


def deg2rad(degrees: float) -> float:
    """Degrees to radians (thin wrapper, kept for call-site readability)."""
    return math.radians(degrees)


def rad2deg(radians: float) -> float:
    """Radians to degrees."""
    return math.degrees(radians)


# ---------------------------------------------------------------------------
# dB helpers
# ---------------------------------------------------------------------------


def db(ratio: float) -> float:
    """Linear power ratio to decibels."""
    if ratio <= 0.0:
        raise ValueError(f"dB of non-positive ratio: {ratio!r}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Decibels to linear power ratio."""
    return 10.0 ** (decibels / 10.0)
