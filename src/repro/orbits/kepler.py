"""Circular-orbit Keplerian propagation and frame conversions.

LEO broadband constellations fly near-circular orbits, so the propagator
models circular two-body motion: constant angular rate ``n = sqrt(mu/a^3)``
along an inclined plane. Frames:

* **ECI** — Earth-centered inertial (x toward vernal equinox).
* **ECEF** — Earth-centered Earth-fixed, rotating with the Earth; related
  to ECI by the Greenwich mean sidereal angle.

Positions are km; times are seconds from an arbitrary epoch at which the
Greenwich meridian is aligned with the vernal equinox (adequate for the
statistical coverage questions this library asks — absolute ephemeris time
never matters, only the geometry distribution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError
from repro.units import EARTH_MU_KM3_S2, EARTH_RADIUS_KM, EARTH_ROTATION_RAD_S


def gmst_rad(time_s: float) -> float:
    """Greenwich mean sidereal angle at ``time_s`` seconds past epoch."""
    return (EARTH_ROTATION_RAD_S * time_s) % (2.0 * math.pi)


def eci_to_ecef(position_eci: np.ndarray, time_s: float) -> np.ndarray:
    """Rotate ECI position(s) (..., 3) into the Earth-fixed frame."""
    theta = gmst_rad(time_s)
    cos_t = math.cos(theta)
    sin_t = math.sin(theta)
    rotation = np.array(
        [[cos_t, sin_t, 0.0], [-sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]]
    )
    return position_eci @ rotation.T


def ecef_to_latlon(position_ecef: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert ECEF position(s) (..., 3) to (lat_deg, lon_deg, alt_km) arrays.

    Uses the spherical Earth consistent with the rest of the library.
    """
    pos = np.asarray(position_ecef, dtype=float)
    radius = np.linalg.norm(pos, axis=-1)
    if np.any(radius <= 0.0):
        raise GeometryError("ECEF position at Earth's center")
    lat = np.degrees(np.arcsin(np.clip(pos[..., 2] / radius, -1.0, 1.0)))
    lon = np.degrees(np.arctan2(pos[..., 1], pos[..., 0]))
    alt = radius - EARTH_RADIUS_KM
    return lat, lon, alt


@dataclass(frozen=True)
class CircularOrbit:
    """A circular inclined orbit.

    Parameters
    ----------
    altitude_km:
        Height above the mean-radius sphere.
    inclination_deg:
        Orbital inclination.
    raan_deg:
        Right ascension of the ascending node.
    arg_latitude_deg:
        Argument of latitude (angle from the ascending node along the
        orbit) at epoch.
    """

    altitude_km: float
    inclination_deg: float
    raan_deg: float = 0.0
    arg_latitude_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.altitude_km <= 0.0:
            raise GeometryError(f"altitude must be positive: {self.altitude_km!r}")
        if not 0.0 <= self.inclination_deg <= 180.0:
            raise GeometryError(
                f"inclination out of [0, 180]: {self.inclination_deg!r}"
            )

    @property
    def semi_major_axis_km(self) -> float:
        return EARTH_RADIUS_KM + self.altitude_km

    @property
    def mean_motion_rad_s(self) -> float:
        """Orbital angular rate n = sqrt(mu / a^3)."""
        return math.sqrt(EARTH_MU_KM3_S2 / self.semi_major_axis_km**3)

    @property
    def period_s(self) -> float:
        return 2.0 * math.pi / self.mean_motion_rad_s

    def position_eci(self, time_s: float) -> np.ndarray:
        """ECI position (3,) at ``time_s`` seconds past epoch."""
        u = math.radians(self.arg_latitude_deg) + self.mean_motion_rad_s * time_s
        return self._plane_to_eci(np.array([u]))[0]

    def positions_eci(self, times_s: np.ndarray) -> np.ndarray:
        """ECI positions (n, 3) at each time in ``times_s``."""
        times = np.asarray(times_s, dtype=float)
        u = math.radians(self.arg_latitude_deg) + self.mean_motion_rad_s * times
        return self._plane_to_eci(u)

    def subsatellite_point(self, time_s: float) -> Tuple[float, float]:
        """(lat_deg, lon_deg) of the sub-satellite point at ``time_s``."""
        ecef = eci_to_ecef(self.position_eci(time_s), time_s)
        lat, lon, _ = ecef_to_latlon(ecef)
        return float(lat), float(lon)

    def _plane_to_eci(self, arg_latitude_rad: np.ndarray) -> np.ndarray:
        a = self.semi_major_axis_km
        inc = math.radians(self.inclination_deg)
        raan = math.radians(self.raan_deg)
        cos_u = np.cos(arg_latitude_rad)
        sin_u = np.sin(arg_latitude_rad)
        # Position in the orbital plane, then rotate by inclination and RAAN.
        x_orb = a * cos_u
        y_orb = a * sin_u
        x = x_orb * math.cos(raan) - y_orb * math.cos(inc) * math.sin(raan)
        y = x_orb * math.sin(raan) + y_orb * math.cos(inc) * math.cos(raan)
        z = y_orb * math.sin(inc)
        return np.stack([x, y, z], axis=-1)
