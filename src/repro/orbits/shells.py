"""Starlink orbital shell parameters from FCC filings.

Gen1 shells follow the April 2021 modification grant (all five shells at
~540-570 km). Gen2A shells follow the December 2022 partial grant of the
Gen2 amendment (SAT-AMD-20210818-00105, the filing the paper cites), which
authorized 7,500 satellites in three shells at 525/530/535 km.

The paper describes "Starlink's current 8000 satellite deployment"; the
:func:`current_deployment` helper returns a Gen1 + Gen2A mix of that size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import GeometryError


@dataclass(frozen=True)
class Shell:
    """One orbital shell of a constellation."""

    name: str
    satellite_count: int
    altitude_km: float
    inclination_deg: float
    planes: int
    sats_per_plane: int

    def __post_init__(self) -> None:
        if self.satellite_count <= 0:
            raise GeometryError(f"empty shell: {self.name}")
        if self.planes * self.sats_per_plane != self.satellite_count:
            raise GeometryError(
                f"shell {self.name}: planes*sats_per_plane "
                f"({self.planes}*{self.sats_per_plane}) != count "
                f"({self.satellite_count})"
            )


#: Starlink Gen1 as authorized in the 2021 modification (4,408 satellites).
GEN1_SHELLS: Tuple[Shell, ...] = (
    Shell("gen1-shell1", 1584, 550.0, 53.0, 72, 22),
    Shell("gen1-shell2", 1584, 540.0, 53.2, 72, 22),
    Shell("gen1-shell3", 720, 570.0, 70.0, 36, 20),
    Shell("gen1-shell4", 348, 560.0, 97.6, 6, 58),
    Shell("gen1-shell5", 172, 560.0, 97.6, 4, 43),
)

#: Starlink Gen2A as authorized in the December 2022 partial grant
#: (7,500 satellites across three mid-inclination shells).
GEN2A_SHELLS: Tuple[Shell, ...] = (
    Shell("gen2-525", 3360, 525.0, 53.0, 28, 120),
    Shell("gen2-530", 2520, 530.0, 43.0, 28, 90),
    Shell("gen2-535", 1620, 535.0, 33.0, 27, 60),
)


def total_satellites(shells: Sequence[Shell]) -> int:
    """Total satellite count across ``shells``."""
    return sum(shell.satellite_count for shell in shells)


def gen1_constellation() -> List[Shell]:
    """The five Gen1 shells (4,408 satellites)."""
    return list(GEN1_SHELLS)


def current_deployment() -> List[Shell]:
    """A shell mix matching the paper's "current ~8000 satellite" figure.

    Gen1 (4,408) plus the first Gen2A shell (3,360) plus a partial second
    Gen2A shell, for 8,008 satellites total.
    """
    partial_gen2_530 = Shell("gen2-530-partial", 240, 530.0, 43.0, 4, 60)
    return list(GEN1_SHELLS) + [GEN2A_SHELLS[0], partial_gen2_530]
