"""Orbital mechanics substrate: propagation, constellations, density theory.

The paper's constellation-sizing argument (Section 3.0.2) rests on two
pieces of orbital geometry, both implemented here:

* how many cells a satellite can see/serve at once (``visibility``), and
* how a Walker constellation's satellites distribute over latitude
  (``density``) — satellites of an inclined shell spend more time at high
  latitudes, so the satellite density over the peak-demand cell determines
  total constellation size through the latitude enhancement factor e(phi).
"""

from repro.orbits.density import (
    ShellMixDensity,
    latitude_enhancement,
    latitude_pdf,
)
from repro.orbits.kepler import CircularOrbit, ecef_to_latlon, eci_to_ecef, gmst_rad
from repro.orbits.shells import (
    GEN1_SHELLS,
    GEN2A_SHELLS,
    Shell,
    current_deployment,
    gen1_constellation,
)
from repro.orbits.gateways import (
    DEFAULT_CONUS_GATEWAYS,
    GatewaySite,
    bent_pipe_reach_km,
)
from repro.orbits.isl import isl_graph, isl_path_km, plus_grid_edges
from repro.orbits.visibility import (
    coverage_central_angle_rad,
    elevation_deg,
    footprint_area_km2,
)
from repro.orbits.walker import WalkerDelta

__all__ = [
    "ShellMixDensity",
    "latitude_enhancement",
    "latitude_pdf",
    "CircularOrbit",
    "ecef_to_latlon",
    "eci_to_ecef",
    "gmst_rad",
    "GEN1_SHELLS",
    "GEN2A_SHELLS",
    "Shell",
    "current_deployment",
    "gen1_constellation",
    "coverage_central_angle_rad",
    "elevation_deg",
    "footprint_area_km2",
    "DEFAULT_CONUS_GATEWAYS",
    "GatewaySite",
    "bent_pipe_reach_km",
    "isl_graph",
    "isl_path_km",
    "plus_grid_edges",
    "WalkerDelta",
]
