"""Walker-delta constellation generation.

A Walker-delta constellation ``i: T/P/F`` places ``T`` satellites in ``P``
evenly spaced orbital planes at inclination ``i``; adjacent planes are phase
shifted by ``F * 360 / T`` degrees of argument of latitude. Starlink's
shells are Walker-delta configurations, so this is the generator the
simulator uses to lay out each shell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.orbits.kepler import CircularOrbit, ecef_to_latlon, eci_to_ecef
from repro.orbits.shells import Shell
from repro.units import EARTH_MU_KM3_S2, EARTH_RADIUS_KM


@dataclass(frozen=True)
class WalkerDelta:
    """A Walker-delta constellation ``inclination: total/planes/phasing``."""

    total: int
    planes: int
    phasing: int
    inclination_deg: float
    altitude_km: float

    def __post_init__(self) -> None:
        if self.planes <= 0 or self.total <= 0:
            raise GeometryError("planes and total must be positive")
        if self.total % self.planes != 0:
            raise GeometryError(
                f"total {self.total} not divisible by planes {self.planes}"
            )
        if not 0 <= self.phasing < self.planes:
            raise GeometryError(
                f"phasing must be in [0, planes): {self.phasing!r}"
            )

    @classmethod
    def from_shell(cls, shell: Shell, phasing: int = 1) -> "WalkerDelta":
        """Build the Walker layout for a Starlink :class:`Shell`."""
        phasing = phasing % shell.planes
        return cls(
            total=shell.satellite_count,
            planes=shell.planes,
            phasing=phasing,
            inclination_deg=shell.inclination_deg,
            altitude_km=shell.altitude_km,
        )

    @property
    def sats_per_plane(self) -> int:
        return self.total // self.planes

    def orbits(self) -> List[CircularOrbit]:
        """One :class:`CircularOrbit` per satellite."""
        orbits = []
        phase_unit_deg = 360.0 * self.phasing / self.total
        for plane in range(self.planes):
            raan = 360.0 * plane / self.planes
            for slot in range(self.sats_per_plane):
                arg_lat = 360.0 * slot / self.sats_per_plane + phase_unit_deg * plane
                orbits.append(
                    CircularOrbit(
                        altitude_km=self.altitude_km,
                        inclination_deg=self.inclination_deg,
                        raan_deg=raan,
                        arg_latitude_deg=arg_lat % 360.0,
                    )
                )
        return orbits

    @property
    def mean_motion_rad_s(self) -> float:
        """Shared orbital angular rate of every satellite in the shell."""
        a = EARTH_RADIUS_KM + self.altitude_km
        return math.sqrt(EARTH_MU_KM3_S2 / a**3)

    def positions_eci(self, time_s: float) -> np.ndarray:
        """ECI positions (total, 3) of all satellites at ``time_s``.

        Vectorized equivalent of calling ``position_eci`` per orbit.
        """
        a = EARTH_RADIUS_KM + self.altitude_km
        inc = math.radians(self.inclination_deg)
        n = self.mean_motion_rad_s
        u = self._arg_latitudes_rad() + n * time_s
        x_orb = a * np.cos(u)
        y_orb = a * np.sin(u)
        return self._plane_to_eci(x_orb, y_orb, inc)

    def eci_state_basis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached geometry for propagation-by-rotation: ``(pos0, tan0)``.

        Every orbit here is circular with the same angular rate ``n``, so a
        satellite's ECI position is a rotation *within its own plane* of its
        epoch position::

            pos(t) = cos(n t) * pos0 + sin(n t) * tan0

        where ``pos0`` is the epoch position and ``tan0`` the in-plane
        tangent ``d pos / du`` at epoch (both ``(total, 3)``). Callers can
        therefore propagate the whole shell with two scalar trig calls and
        a fused multiply-add instead of per-satellite trigonometry.
        """
        a = EARTH_RADIUS_KM + self.altitude_km
        inc = math.radians(self.inclination_deg)
        u0 = self._arg_latitudes_rad()
        cos_u = np.cos(u0)
        sin_u = np.sin(u0)
        pos0 = self._plane_to_eci(a * cos_u, a * sin_u, inc)
        tan0 = self._plane_to_eci(-a * sin_u, a * cos_u, inc)
        return pos0, tan0

    def _arg_latitudes_rad(self) -> np.ndarray:
        """Epoch argument of latitude per satellite, (planes, sats_per_plane)."""
        planes = np.arange(self.planes)
        slots = np.arange(self.sats_per_plane)
        phase_unit = math.radians(360.0 * self.phasing / self.total)
        return (
            np.radians(360.0 * slots / self.sats_per_plane)[None, :]
            + phase_unit * planes[:, None]
        )

    def _plane_to_eci(
        self, x_orb: np.ndarray, y_orb: np.ndarray, inc: float
    ) -> np.ndarray:
        """Rotate per-plane orbital coordinates into ECI, (total, 3)."""
        planes = np.arange(self.planes)
        raan = np.radians(360.0 * planes / self.planes)[:, None]
        x = x_orb * np.cos(raan) - y_orb * math.cos(inc) * np.sin(raan)
        y = x_orb * np.sin(raan) + y_orb * math.cos(inc) * np.cos(raan)
        z = y_orb * math.sin(inc)
        return np.stack([x, y, z], axis=-1).reshape(self.total, 3)

    def subsatellite_points(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """(lat_deg, lon_deg) arrays of all sub-satellite points at ``time_s``."""
        ecef = eci_to_ecef(self.positions_eci(time_s), time_s)
        lat, lon, _ = ecef_to_latlon(ecef)
        return lat, lon
