"""Satellite-to-ground visibility geometry.

Everything here is spherical trigonometry on the mean-radius Earth:

* elevation angle of a satellite as seen from a ground point,
* the maximum Earth-central angle at which a satellite clears a minimum
  elevation mask (Starlink UTs use a 25 degree mask), and
* the ground footprint area that implies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.units import EARTH_RADIUS_KM

#: Minimum elevation mask Starlink user terminals operate at, degrees.
STARLINK_MIN_ELEVATION_DEG = 25.0


def coverage_central_angle_rad(
    altitude_km: float, min_elevation_deg: float = STARLINK_MIN_ELEVATION_DEG
) -> float:
    """Max Earth-central angle between sub-satellite point and a served UT.

    Standard single-satellite geometry: with Earth radius ``Re``, orbit
    radius ``Re + h`` and elevation mask ``eps``,
    ``psi = arccos(Re/(Re+h) * cos(eps)) - eps``.
    """
    if altitude_km <= 0.0:
        raise GeometryError(f"altitude must be positive: {altitude_km!r}")
    if not 0.0 <= min_elevation_deg < 90.0:
        raise GeometryError(
            f"elevation mask out of [0, 90): {min_elevation_deg!r}"
        )
    eps = math.radians(min_elevation_deg)
    ratio = EARTH_RADIUS_KM / (EARTH_RADIUS_KM + altitude_km)
    return math.acos(ratio * math.cos(eps)) - eps


def footprint_area_km2(
    altitude_km: float, min_elevation_deg: float = STARLINK_MIN_ELEVATION_DEG
) -> float:
    """Area of the spherical cap a single satellite can serve, km^2."""
    psi = coverage_central_angle_rad(altitude_km, min_elevation_deg)
    return 2.0 * math.pi * EARTH_RADIUS_KM**2 * (1.0 - math.cos(psi))


def slant_range_km(altitude_km: float, central_angle_rad: float) -> float:
    """Distance from ground point to satellite at given central angle."""
    r_sat = EARTH_RADIUS_KM + altitude_km
    return math.sqrt(
        EARTH_RADIUS_KM**2
        + r_sat**2
        - 2.0 * EARTH_RADIUS_KM * r_sat * math.cos(central_angle_rad)
    )


def elevation_deg(
    ground_lat_deg: float,
    ground_lon_deg: float,
    sat_lat_deg,
    sat_lon_deg,
    altitude_km,
):
    """Elevation angle(s) of satellite(s) from a ground point, degrees.

    Satellite arguments may be scalars or numpy arrays (broadcast together).
    Negative elevations mean the satellite is below the horizon.
    """
    phi_g = math.radians(ground_lat_deg)
    lam_g = math.radians(ground_lon_deg)
    phi_s = np.radians(np.asarray(sat_lat_deg, dtype=float))
    lam_s = np.radians(np.asarray(sat_lon_deg, dtype=float))
    cos_psi = np.clip(
        math.sin(phi_g) * np.sin(phi_s)
        + math.cos(phi_g) * np.cos(phi_s) * np.cos(lam_s - lam_g),
        -1.0,
        1.0,
    )
    r_sat = EARTH_RADIUS_KM + np.asarray(altitude_km, dtype=float)
    sin_psi = np.sqrt(1.0 - cos_psi**2)
    # tan(elev) = (cos(psi) - Re/r) / sin(psi); guard the sub-satellite case.
    with np.errstate(divide="ignore", invalid="ignore"):
        elev = np.degrees(
            np.arctan2(cos_psi - EARTH_RADIUS_KM / r_sat, sin_psi)
        )
    elev = np.where(sin_psi == 0.0, 90.0, elev)
    if elev.ndim == 0:
        return float(elev)
    return elev


def satellites_in_view(
    ground_lat_deg: float,
    ground_lon_deg: float,
    sat_lats_deg: np.ndarray,
    sat_lons_deg: np.ndarray,
    altitude_km: float,
    min_elevation_deg: float = STARLINK_MIN_ELEVATION_DEG,
) -> np.ndarray:
    """Boolean mask of satellites above the elevation mask for the point."""
    elev = elevation_deg(
        ground_lat_deg, ground_lon_deg, sat_lats_deg, sat_lons_deg, altitude_km
    )
    return np.asarray(elev) >= min_elevation_deg
