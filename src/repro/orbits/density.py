"""Latitude distribution of Walker-constellation satellites.

For a circular orbit at inclination ``i``, the argument of latitude is
uniform in time and the geographic latitude satisfies
``sin(phi) = sin(i) * sin(u)``. The time-averaged latitude PDF is therefore

    f(phi) = cos(phi) / (pi * sqrt(sin^2 i - sin^2 phi)),   |phi| < i

and the *surface density* of satellites at latitude ``phi``, relative to a
uniform spread over the sphere, is the enhancement factor

    e(phi) = (2 / pi) / sqrt(sin^2 i - sin^2 phi).

e integrates to 1 over the sphere and diverges at ``phi = i`` (satellites
"linger" at the top of their ground track), which is why constellation
operators pick inclinations just above their densest markets. The paper's
Table 2 sizing divides a uniform-sphere satellite requirement by e at the
peak-demand cell's latitude; :class:`ShellMixDensity` provides that factor
for multi-shell constellations, weighting each shell by satellite count.

Band-averaged variants integrate e over a small latitude band, which keeps
the model finite for cells near a shell's inclination limit.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import integrate

from repro.errors import GeometryError
from repro.orbits.shells import Shell


def latitude_pdf(lat_deg: float, inclination_deg: float) -> float:
    """Time-averaged PDF of a satellite's latitude.

    Returns the density of the satellite's latitude distribution evaluated
    at ``lat_deg``, in units of probability per *radian* of latitude.
    Zero outside ``|lat| < inclination`` (retrograde shells use the
    supplementary inclination).
    """
    inc_eff = _effective_inclination_rad(inclination_deg)
    phi = math.radians(lat_deg)
    if abs(phi) >= inc_eff:
        return 0.0
    sin2 = math.sin(inc_eff) ** 2 - math.sin(phi) ** 2
    return math.cos(phi) / (math.pi * math.sqrt(sin2))


def latitude_enhancement(lat_deg: float, inclination_deg: float) -> float:
    """Surface-density enhancement e(phi) relative to a uniform sphere.

    Diverges as ``|lat| -> inclination``; raises for latitudes the shell
    never overflies.
    """
    inc_eff = _effective_inclination_rad(inclination_deg)
    phi = math.radians(lat_deg)
    if abs(phi) >= inc_eff:
        raise GeometryError(
            f"latitude {lat_deg!r} not covered by inclination {inclination_deg!r}"
        )
    sin2 = math.sin(inc_eff) ** 2 - math.sin(phi) ** 2
    return (2.0 / math.pi) / math.sqrt(sin2)


def band_enhancement(
    lat_deg: float, inclination_deg: float, band_halfwidth_deg: float = 0.5
) -> float:
    """e(phi) averaged over a latitude band (finite near the inclination edge).

    Averages the enhancement over ``[lat - w, lat + w]`` weighted by band
    area (cos phi), integrating through any integrable singularity at the
    shell's inclination limit. Returns 0 if the shell never covers the band.
    """
    if band_halfwidth_deg <= 0.0:
        raise GeometryError(
            f"band halfwidth must be positive: {band_halfwidth_deg!r}"
        )
    inc_eff = _effective_inclination_rad(inclination_deg)
    lo = math.radians(lat_deg - band_halfwidth_deg)
    hi = math.radians(lat_deg + band_halfwidth_deg)
    # Clip the integration range to the latitudes the shell covers.
    lo_cov = max(lo, -inc_eff)
    hi_cov = min(hi, inc_eff)
    if lo_cov >= hi_cov:
        return 0.0

    sin2_inc = math.sin(inc_eff) ** 2

    def integrand(phi: float) -> float:
        # e(phi) * cos(phi): area-weighted enhancement, integrable at phi=inc.
        sin2 = sin2_inc - math.sin(phi) ** 2
        return (2.0 / math.pi) * math.cos(phi) / math.sqrt(max(sin2, 0.0) or 1e-300)

    numerator, _ = integrate.quad(integrand, lo_cov, hi_cov, limit=200)
    # Band area measure (per unit longitude): integral of cos(phi) d(phi).
    band_area = math.sin(hi) - math.sin(lo)
    if band_area <= 0.0:
        raise GeometryError("empty latitude band")
    return numerator / band_area


def _effective_inclination_rad(inclination_deg: float) -> float:
    if not 0.0 < inclination_deg < 180.0:
        raise GeometryError(f"inclination out of (0, 180): {inclination_deg!r}")
    inc = math.radians(inclination_deg)
    if inc > math.pi / 2.0:
        inc = math.pi - inc  # retrograde shells cover the same latitudes
    return inc


class ShellMixDensity:
    """Latitude density model for a multi-shell constellation.

    The mix enhancement at latitude ``phi`` is the satellite-count-weighted
    average of per-shell enhancements (shells that never reach ``phi``
    contribute zero):

        e_mix(phi) = sum_k (N_k / N) * e(phi; i_k)

    ``constellation_size_for_local_density`` inverts the relationship the
    paper's Table 2 uses: given a required satellite surface density at one
    latitude, the total constellation (preserving the mix proportions) is

        N = rho_required * A_earth / e_mix(phi).
    """

    def __init__(self, shells: Sequence[Shell]):
        if not shells:
            raise GeometryError("shell mix must not be empty")
        self.shells = list(shells)
        self.total_satellites = sum(s.satellite_count for s in self.shells)

    def enhancement(self, lat_deg: float) -> float:
        """Mix enhancement e_mix at ``lat_deg`` (0 if no shell covers it)."""
        total = 0.0
        for shell in self.shells:
            weight = shell.satellite_count / self.total_satellites
            inc_eff_deg = math.degrees(
                _effective_inclination_rad(shell.inclination_deg)
            )
            if abs(lat_deg) < inc_eff_deg:
                total += weight * latitude_enhancement(
                    lat_deg, shell.inclination_deg
                )
        return total

    def band_enhancement(
        self, lat_deg: float, band_halfwidth_deg: float = 0.5
    ) -> float:
        """Band-averaged mix enhancement (finite at inclination edges)."""
        total = 0.0
        for shell in self.shells:
            weight = shell.satellite_count / self.total_satellites
            total += weight * band_enhancement(
                lat_deg, shell.inclination_deg, band_halfwidth_deg
            )
        return total

    def density_per_km2(self, lat_deg: float) -> float:
        """Satellites per km^2 of Earth surface at ``lat_deg`` for this mix."""
        from repro.units import EARTH_SURFACE_AREA_KM2

        uniform = self.total_satellites / EARTH_SURFACE_AREA_KM2
        return uniform * self.enhancement(lat_deg)

    def constellation_size_for_local_density(
        self, required_density_per_km2: float, lat_deg: float
    ) -> float:
        """Total satellites needed for a surface density at one latitude."""
        from repro.units import EARTH_SURFACE_AREA_KM2

        if required_density_per_km2 <= 0.0:
            raise GeometryError(
                f"required density must be positive: {required_density_per_km2!r}"
            )
        enhancement = self.enhancement(lat_deg)
        if enhancement <= 0.0:
            raise GeometryError(
                f"no shell in the mix covers latitude {lat_deg!r}"
            )
        return required_density_per_km2 * EARTH_SURFACE_AREA_KM2 / enhancement

    def empirical_latitude_histogram(
        self, lat_samples_deg: np.ndarray, bin_edges_deg: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram helper for validating against simulated positions.

        Returns (bin_centers_deg, enhancement_estimate) where the estimate
        is the empirical surface-density enhancement per bin: the fraction
        of samples in each bin divided by the fraction of the sphere's area
        in that bin.
        """
        lat_samples = np.asarray(lat_samples_deg, dtype=float)
        edges = np.asarray(bin_edges_deg, dtype=float)
        counts, _ = np.histogram(lat_samples, bins=edges)
        fraction = counts / max(1, lat_samples.size)
        area_fraction = (
            np.sin(np.radians(edges[1:])) - np.sin(np.radians(edges[:-1]))
        ) / 2.0
        with np.errstate(divide="ignore", invalid="ignore"):
            enhancement = np.where(area_fraction > 0, fraction / area_fraction, 0.0)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, enhancement
