"""Inter-satellite-link (+Grid) topology over a Walker shell.

Starlink satellites carry laser ISLs in the standard "+Grid" arrangement:
each satellite links to the two neighbors in its own orbital plane and to
one counterpart in each adjacent plane. This module builds that topology
as a :mod:`networkx` graph with link lengths as edge weights, giving the
substrate for UT -> satellite -> (ISL hops) -> gateway latency analysis
(:mod:`repro.core.latency`) — the paper's "indirectly via inter-satellite
link" operating mode.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.errors import GeometryError
from repro.orbits.walker import WalkerDelta


def plus_grid_edges(walker: WalkerDelta) -> List[Tuple[int, int]]:
    """The +Grid ISL edge list for a Walker shell.

    Satellite indices follow :meth:`WalkerDelta.positions_eci` ordering:
    ``index = plane * sats_per_plane + slot``. Each satellite gets an
    intra-plane edge to the next slot (ring) and a cross-plane edge to the
    same slot of the next plane (ring of planes).
    """
    per_plane = walker.sats_per_plane
    edges = []
    for plane in range(walker.planes):
        for slot in range(per_plane):
            index = plane * per_plane + slot
            # Intra-plane: next satellite in the same ring.
            intra = plane * per_plane + (slot + 1) % per_plane
            edges.append((index, intra))
            # Cross-plane: same slot, adjacent plane.
            cross = ((plane + 1) % walker.planes) * per_plane + slot
            edges.append((index, cross))
    return edges


def isl_graph(walker: WalkerDelta, time_s: float = 0.0) -> nx.Graph:
    """+Grid graph with instantaneous link distances (km) as weights.

    The topology is static (links follow the lattice); distances are
    evaluated at ``time_s`` and change slowly for intra-plane links, more
    for cross-plane links near the seam. Latency analysis at one epoch is
    representative for a symmetric Walker shell.
    """
    positions = walker.positions_eci(time_s)
    graph = nx.Graph()
    graph.add_nodes_from(range(walker.total))
    for a, b in plus_grid_edges(walker):
        distance = float(np.linalg.norm(positions[a] - positions[b]))
        graph.add_edge(a, b, distance_km=distance)
    return graph


def isl_path_km(
    graph: nx.Graph, source: int, target: int
) -> Tuple[float, List[int]]:
    """Shortest ISL path length (km) and node sequence between satellites."""
    if source not in graph or target not in graph:
        raise GeometryError(
            f"satellite index out of range: {source!r} or {target!r}"
        )
    length, path = nx.single_source_dijkstra(
        graph, source, target, weight="distance_km"
    )
    return float(length), list(path)


def degree_histogram(graph: nx.Graph) -> Dict[int, int]:
    """Node-degree counts — +Grid should be 4-regular."""
    histogram: Dict[int, int] = {}
    for _, degree in graph.degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
