"""Ground-station (gateway) geometry and the bent-pipe constraint.

The paper's operational model (Section 2.2, task 2): every serving
satellite must reach a gateway, either directly ("bent pipe") or over
inter-satellite links. This module makes the bent-pipe case analyzable:

* a satellite can serve a user and bend its traffic to a gateway iff it is
  simultaneously inside both coverage cones, which is possible iff the
  user-gateway ground separation is at most
  ``psi_ut(h, ut_mask) + psi_gw(h, gw_mask)``;
* from that, the fraction of demand cells that are bent-pipe reachable for
  a gateway set, and a greedy minimum set of gateway sites for full
  coverage.

Satellites with inter-satellite links escape the constraint entirely —
comparing the two regimes quantifies what ISLs buy over CONUS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.coords import LatLon
from repro.orbits.visibility import (
    STARLINK_MIN_ELEVATION_DEG,
    coverage_central_angle_rad,
)
from repro.units import EARTH_RADIUS_KM

#: Typical minimum elevation for gateway antennas (larger dishes track
#: lower than user terminals).
GATEWAY_MIN_ELEVATION_DEG = 10.0


@dataclass(frozen=True)
class GatewaySite:
    """A terrestrial gateway (ground station) site."""

    name: str
    position: LatLon


#: A plausible CONUS gateway deployment, patterned after publicly mapped
#: Starlink ground-station locations (site coordinates coarse).
DEFAULT_CONUS_GATEWAYS: Tuple[GatewaySite, ...] = (
    GatewaySite("North Bend WA", LatLon(47.49, -121.78)),
    GatewaySite("Kalama WA", LatLon(46.01, -122.84)),
    GatewaySite("Kuna ID", LatLon(43.49, -116.42)),
    GatewaySite("Conrad MT", LatLon(48.17, -111.95)),
    GatewaySite("Colburn ID", LatLon(48.35, -116.51)),
    GatewaySite("Hawthorne CA", LatLon(33.92, -118.33)),
    GatewaySite("Adelanto CA", LatLon(34.58, -117.41)),
    GatewaySite("Litchfield Park AZ", LatLon(33.49, -112.36)),
    GatewaySite("Albuquerque NM", LatLon(35.04, -106.61)),
    GatewaySite("Boca Chica TX", LatLon(25.99, -97.19)),
    GatewaySite("Sanger TX", LatLon(33.36, -97.17)),
    GatewaySite("Greenville PA", LatLon(41.40, -80.39)),
    GatewaySite("Beekmantown NY", LatLon(44.76, -73.48)),
    GatewaySite("Loring ME", LatLon(46.95, -67.86)),
    GatewaySite("Merrillan WI", LatLon(44.45, -90.83)),
    GatewaySite("Kansas City KS", LatLon(39.05, -94.75)),
    GatewaySite("Gaffney SC", LatLon(35.05, -81.65)),
    GatewaySite("Cape Canaveral FL", LatLon(28.49, -80.57)),
)


def bent_pipe_reach_km(
    altitude_km: float,
    ut_elevation_deg: float = STARLINK_MIN_ELEVATION_DEG,
    gw_elevation_deg: float = GATEWAY_MIN_ELEVATION_DEG,
) -> float:
    """Max user-gateway ground distance servable by one bent-pipe satellite."""
    psi_ut = coverage_central_angle_rad(altitude_km, ut_elevation_deg)
    psi_gw = coverage_central_angle_rad(altitude_km, gw_elevation_deg)
    return (psi_ut + psi_gw) * EARTH_RADIUS_KM
