"""Render telemetry back to humans: the ``repro-divide report`` engine.

Takes the files a run leaves behind — ``*.manifest.json`` (see
:mod:`repro.obs.manifest`) and ``*.jsonl`` event streams (see
:mod:`repro.obs.writer`) — and renders:

* the **span tree**, same-name siblings aggregated (count, total wall,
  mean wall, total CPU),
* the **top-N slowest** individual spans,
* the **metric tables** (counters, gauges, histograms),
* the **cache hit rate** (from ``runner.cache.hits`` / ``.misses``),
* the **event summary** of a JSONL stream, including the ERROR count and
  a ``malformed events: N`` line (bad JSONL lines are skipped and
  counted, not fatal — a crashed worker's torn final write should not
  take the post-mortem report down with it),
* the **profile summary** (top self-time functions) when a manifest was
  produced by a ``--profile`` run.

Everything returns strings; the CLI just prints them.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.obs.manifest import RunManifest
from repro.obs.spans import SpanRecord
from repro.obs.writer import read_events_stats


def _format_table(headers, rows, title=""):
    # Imported lazily: repro.viz pulls in repro.demand, whose modules
    # import repro.obs — a module-level import here would be circular.
    from repro.viz.tables import format_table

    return format_table(headers, rows, title=title)


__all__ = [
    "load_report_inputs",
    "format_failures",
    "format_span_tree",
    "format_top_spans",
    "format_metrics",
    "format_serving",
    "format_event_summary",
    "format_profile",
    "format_report",
    "cache_hit_rate",
]


def format_failures(extra: Dict[str, object]) -> List[str]:
    """Failure-record lines from a sweep manifest's ``extra`` section.

    Sweep manifests carry ``tasks_failed`` and a ``failures`` list
    (index, params, attempts, and the captured error record); other
    manifests render no lines at all.
    """
    if "tasks_failed" not in extra and not extra.get("failures"):
        return []
    failures = extra.get("failures") or []
    lines = [f"failures recorded: {len(failures)}"]
    for failure in failures:
        if not isinstance(failure, dict):
            continue
        error = failure.get("error") or {}
        lines.append(
            f"  task {failure.get('index', '?')} "
            f"{failure.get('params', {})} "
            f"(attempts {failure.get('attempts', '?')}): "
            f"{error.get('type', '?')}: {error.get('message', '')}"
        )
    return lines


def load_report_inputs(
    path: Union[str, Path],
) -> Tuple[
    List[Tuple[Path, RunManifest]], List[Tuple[Path, List[Dict], int]]
]:
    """Resolve a report target into (manifests, event streams).

    ``path`` may be one manifest file, one ``.jsonl`` file, or a
    directory (scanned for ``*.manifest.json`` and ``*.jsonl``).
    Each stream entry is ``(path, events, malformed)`` — JSONL lines
    that fail to parse are skipped and counted, never fatal.
    """
    target = Path(path)
    if not target.exists():
        raise ReproError(f"no such telemetry path: {target}")
    manifests: List[Tuple[Path, RunManifest]] = []
    streams: List[Tuple[Path, List[Dict], int]] = []
    if target.is_dir():
        candidates = sorted(target.glob("*.manifest.json")) + sorted(
            target.glob("*.jsonl")
        )
        if not candidates:
            raise ReproError(
                f"{target}: no *.manifest.json or *.jsonl files to report on"
            )
    else:
        candidates = [target]
    for candidate in candidates:
        if candidate.suffix == ".jsonl":
            events, malformed = read_events_stats(candidate)
            streams.append((candidate, events, malformed))
        else:
            manifests.append((candidate, RunManifest.load(candidate)))
    return manifests, streams


# -- span rendering ----------------------------------------------------------


def _children_by_parent(
    spans: Sequence[SpanRecord],
) -> Dict[Optional[int], List[SpanRecord]]:
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for span in spans:
        children.setdefault(span.parent, []).append(span)
    return children


def format_span_tree(spans: Sequence[Dict], max_depth: int = 8) -> str:
    """The span forest as an indented tree, same-name siblings aggregated.

    Each line: ``name xCount  total wall  (mean wall)  cpu``. Repeated
    siblings (e.g. one ``sim.step`` per simulation step) collapse into
    one aggregated line, which is what makes a 4.66M-location run's
    tree fit on a screen.
    """
    records = [SpanRecord.from_dict(payload) for payload in spans]
    if not records:
        return "span tree: (empty)"
    children = _children_by_parent(records)
    lines = [f"span tree ({len(records)} spans):"]

    def render(parents: Sequence[Optional[int]], depth: int) -> None:
        if depth > max_depth:
            return
        # Aggregate same-name children across every parent in the group,
        # so e.g. the sim.visibility spans of all sim.step instances
        # collapse into one line.
        group: "OrderedDict[str, List[SpanRecord]]" = OrderedDict()
        for parent in parents:
            for span in children.get(parent, []):
                group.setdefault(span.name, []).append(span)
        for name, members in group.items():
            wall = sum(s.wall_s for s in members)
            cpu = sum(s.cpu_s for s in members)
            count = len(members)
            mean = wall / count
            lines.append(
                "  " * (depth + 1)
                + f"{name} x{count}  {wall * 1e3:.1f}ms"
                + (f" (mean {mean * 1e3:.2f}ms)" if count > 1 else "")
                + f"  cpu {cpu * 1e3:.1f}ms"
            )
            render([member.index for member in members], depth + 1)

    render([None], 0)
    return "\n".join(lines)


def format_top_spans(spans: Sequence[Dict], top: int = 10) -> str:
    """The ``top`` slowest individual spans by wall time."""
    records = [SpanRecord.from_dict(payload) for payload in spans]
    if not records:
        return "top spans: (none)"
    slowest = sorted(records, key=lambda s: s.wall_s, reverse=True)[:top]
    rows = [
        [
            span.name,
            f"{span.wall_s * 1e3:.2f}",
            f"{span.cpu_s * 1e3:.2f}",
            f"{span.start_s:.3f}",
        ]
        for span in slowest
    ]
    return _format_table(
        ["span", "wall_ms", "cpu_ms", "start_s"],
        rows,
        title=f"top {len(slowest)} slowest stages",
    )


# -- metrics rendering -------------------------------------------------------


def cache_hit_rate(metrics: Dict[str, Dict]) -> Optional[float]:
    """Hit rate from ``runner.cache.hits``/``.misses`` (None without them)."""
    counters = metrics.get("counters", {})
    hits = counters.get("runner.cache.hits")
    misses = counters.get("runner.cache.misses")
    if hits is None and misses is None:
        return None
    hits = hits or 0
    misses = misses or 0
    total = hits + misses
    return hits / total if total else 0.0


def format_serving(metrics: Dict[str, Dict]) -> List[str]:
    """Serving-layer summary lines from ``serve.*`` metrics (or none).

    Renders query throughput (the ``serve.qps`` gauge the load generator
    sets), total queries and errors, epoch swaps, and the
    ``serve.query.latency_s`` histogram quantiles.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    queries = counters.get("serve.queries")
    if queries is None and "serve.qps" not in gauges:
        return []
    lines = [f"serving: {int(queries or 0)} queries"]
    if "serve.qps" in gauges:
        lines[0] += f" at {gauges['serve.qps']:,.0f} qps"
    lines[0] += (
        f", {int(counters.get('serve.errors', 0))} errors, "
        f"{int(counters.get('serve.epoch_swaps', 0))} epoch swaps"
    )
    latency = histograms.get("serve.query.latency_s")
    if latency:
        lines.append(
            "  request latency: p50 {p50}, p95 {p95}, max {max} "
            "({count} requests)".format(
                p50=_format_seconds(latency.get("p50")),
                p95=_format_seconds(latency.get("p95")),
                max=_format_seconds(latency.get("max")),
                count=int(latency.get("count", 0)),
            )
        )
    return lines


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value * 1e3:.2f}ms"


def format_metrics(metrics: Dict[str, Dict]) -> str:
    """Counters, gauges, and histograms as aligned tables."""
    sections = []
    counters = metrics.get("counters", {})
    if counters:
        sections.append(
            _format_table(
                ["counter", "value"],
                [[name, _format_number(value)] for name, value in sorted(counters.items())],
                title="counters",
            )
        )
    gauges = metrics.get("gauges", {})
    if gauges:
        sections.append(
            _format_table(
                ["gauge", "value"],
                [[name, _format_number(value)] for name, value in sorted(gauges.items())],
                title="gauges",
            )
        )
    histograms = metrics.get("histograms", {})
    if histograms:
        rows = []
        for name, stats in sorted(histograms.items()):
            rows.append(
                [
                    name,
                    stats.get("count", 0),
                    _format_number(stats.get("total")),
                    _format_number(stats.get("min")),
                    _format_number(stats.get("p50")),
                    _format_number(stats.get("p95")),
                    _format_number(stats.get("max")),
                ]
            )
        sections.append(
            _format_table(
                ["histogram", "count", "total", "min", "p50", "p95", "max"],
                rows,
                title="histograms",
            )
        )
    if not sections:
        return "metrics: (none recorded)"
    return "\n\n".join(sections)


def _format_number(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


# -- event streams -----------------------------------------------------------


def format_event_summary(events: Sequence[Dict], malformed: int = 0) -> str:
    """Event counts by type, log counts by level, and the ERROR total.

    ``malformed`` is the count of skipped unparseable JSONL lines (from
    :func:`repro.obs.writer.read_events_stats`); it is always rendered
    so a truncated stream is visible even when everything else parses.
    """
    by_type: Dict[str, int] = {}
    by_level: Dict[str, int] = {}
    for event in events:
        by_type[str(event.get("type", "?"))] = (
            by_type.get(str(event.get("type", "?")), 0) + 1
        )
        if event.get("type") == "log":
            level = str(event.get("level", "?"))
            by_level[level] = by_level.get(level, 0) + 1
    lines = [f"events: {len(events)} total"]
    for event_type, count in sorted(by_type.items()):
        lines.append(f"  {event_type}: {count}")
    if by_level:
        lines.append(
            "log levels: "
            + ", ".join(f"{lvl}={n}" for lvl, n in sorted(by_level.items()))
        )
    lines.append(f"error events: {by_level.get('ERROR', 0)}")
    lines.append(f"malformed events: {int(malformed)}")
    return "\n".join(lines)


# -- profiles ----------------------------------------------------------------


def format_profile(profile: Dict) -> str:
    """Sampling-profiler digest from a manifest's ``extra['profile']``.

    Renders the sampling rate, sample/stack counts, and the top
    self-time (leaf-frame) functions — enough to spot the hot kernel
    without opening the folded-stack file, whose path is echoed for
    flamegraph tooling.
    """
    if not profile:
        return "profile: (none)"
    samples = int(profile.get("samples", 0))
    lines = [
        "profile: {hz:g} Hz, {samples} samples, {stacks} unique stacks"
        .format(
            hz=float(profile.get("hz", 0.0)),
            samples=samples,
            stacks=int(profile.get("stacks", 0)),
        )
    ]
    if profile.get("path"):
        lines[0] += f" -> {profile['path']}"
    top = profile.get("top_self") or []
    if top and samples:
        rows = [
            [str(label), str(int(count)), f"{int(count) / samples:.1%}"]
            for label, count in top
        ]
        lines.append(
            _format_table(
                ["function", "self samples", "self %"],
                rows,
                title="top self-time",
            )
        )
    return "\n\n".join(lines)


# -- the full report ---------------------------------------------------------


def format_report(path: Union[str, Path], top: int = 10) -> str:
    """Everything ``repro-divide report`` prints for one target path."""
    manifests, streams = load_report_inputs(path)
    sections: List[str] = []
    for manifest_path, manifest in manifests:
        header = [f"=== manifest {manifest_path} ==="]
        header.append(
            f"command: {manifest.command or '?'}"
            + (f" (argv: {' '.join(manifest.argv)})" if manifest.argv else "")
        )
        header.append(f"commit: {manifest.commit}")
        if manifest.engine:
            header.append(f"engine: {manifest.engine}")
        if manifest.params_hash:
            header.append(f"params hash: {manifest.params_hash}")
        if manifest.dataset_fingerprint:
            header.append(
                f"dataset fingerprint: {manifest.dataset_fingerprint}"
            )
        rate = cache_hit_rate(manifest.metrics)
        if rate is not None:
            header.append(f"cache hit rate: {rate:.1%}")
        header.extend(format_serving(manifest.metrics))
        header.extend(format_failures(manifest.extra))
        header.append(f"span records: {len(manifest.spans)}")
        sections.append("\n".join(header))
        sections.append(format_span_tree(manifest.spans))
        if manifest.spans:
            sections.append(format_top_spans(manifest.spans, top=top))
        sections.append(format_metrics(manifest.metrics))
        profile = manifest.extra.get("profile")
        if isinstance(profile, dict):
            sections.append(format_profile(profile))
    for stream_path, events, malformed in streams:
        sections.append(f"=== events {stream_path} ===")
        sections.append(format_event_summary(events, malformed=malformed))
    return "\n\n".join(sections)
