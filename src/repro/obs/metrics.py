"""A process-local registry of counters, gauges, and histograms.

Instruments are created on demand and live for the registry's lifetime::

    from repro.obs import registry

    registry().counter("sim.steps").inc()
    registry().counter("sim.csr.nnz").inc(csr.indices.size)
    registry().gauge("sim.cells").set(n_cells)
    registry().histogram("runner.task.wall_s").observe(wall)

Naming convention: dotted, lowercase, ``<layer>.<thing>[.<aspect>]``
(``runner.cache.hits``, ``locations.explode.rows``); units spelled out
as a suffix when not obvious (``_s``, ``_mbps``, ``_bytes``).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-ready dicts.
:meth:`MetricsRegistry.diff` subtracts two snapshots and
:meth:`MetricsRegistry.merge` adds one into a live registry — together
they are what makes metrics safe across ``ProcessPoolExecutor``
workers: each worker diffs its registry around a task and ships the
delta home, and merged parent counters equal the serial run's exactly
(counter adds are integer/float sums, so order does not matter).

Disabling the registry (``enabled = False``) turns every ``inc`` /
``set`` / ``observe`` into a single attribute check.

Thread safety: counters and gauges are single-word updates (safe under
the GIL); histograms guard their multi-field update with a lock so a
snapshot taken from another thread (the ``/metrics`` exposition thread,
the live streamer) never sees a torn count/total/min/max/samples state.
Instrument *creation* is also locked, so two threads racing on the
first ``counter(name)`` call cannot clobber each other.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (live imports us)
    from repro.obs.live import RollingHistogram

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Samples kept per histogram for percentile estimates. Observations
#: past the cap still update count/total/min/max.
HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """A monotonically increasing number (int or float)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.value: float = 0
        self._registry = registry

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1); no-op when the registry is disabled."""
        if self._registry.enabled:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.value: Optional[float] = None
        self._registry = registry

    def set(self, value: float) -> None:
        """Record the current value; no-op when the registry is disabled."""
        if self._registry.enabled:
            self.value = value


class Histogram:
    """Count/total/min/max plus a bounded sample reservoir for quantiles.

    Observations are guarded by a per-instrument lock: concurrent serve
    handlers and the metrics-exposition thread may touch the same
    histogram, and the count/total/min/max/samples update must be seen
    atomically (a snapshot mid-``observe`` must never show a count that
    excludes the total, or vice versa).
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "samples",
        "_registry",
        "_lock",
    )

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self._registry = registry
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation; no-op when the registry is disabled."""
        if not self._registry.enabled:
            return
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
                self.samples.append(value)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the retained samples (None if empty)."""
        with self._lock:
            ordered = sorted(self.samples)
        if not ordered:
            return None
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def stats(self) -> Dict[str, object]:
        """One consistent count/total/min/max/p50/p95 view (for snapshots)."""
        with self._lock:
            count = self.count
            total = self.total
            low = self.min
            high = self.max
            ordered = sorted(self.samples)

        def _rank(q: float) -> Optional[float]:
            if not ordered:
                return None
            return ordered[min(len(ordered) - 1, max(0, int(q * len(ordered))))]

        return {
            "count": count,
            "total": total,
            "min": low,
            "max": high,
            "p50": _rank(0.50),
            "p95": _rank(0.95),
        }


class MetricsRegistry:
    """All instruments of one process, keyed by name."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._rolling: Dict[str, "RollingHistogram"] = {}
        self._create_lock = threading.Lock()

    # -- instrument accessors (create on first touch) -----------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name, self)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name, self)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name, self)
        return instrument

    def rolling(
        self,
        name: str,
        window_s: float = 60.0,
        buckets: int = 12,
    ) -> "RollingHistogram":
        """The rolling-window histogram called ``name``, created on first use.

        Rolling histograms live beside — not inside — :meth:`snapshot`:
        they answer "what were the last ``window_s`` seconds like"
        (:meth:`rolling_snapshot`), while the cumulative snapshot keeps
        its exact diff/merge semantics. The window configuration is
        fixed at first creation; later calls return the same instrument.
        """
        instrument = self._rolling.get(name)
        if instrument is None:
            from repro.obs.live import RollingHistogram

            with self._create_lock:
                instrument = self._rolling.get(name)
                if instrument is None:
                    instrument = self._rolling[name] = RollingHistogram(
                        name, window_s=window_s, buckets=buckets, registry=self
                    )
        return instrument

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready copy of every instrument's current state."""
        with self._create_lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        hist_stats = {name: hist.stats() for name, hist in histograms}
        return {
            "counters": {name: counter.value for name, counter in counters},
            "gauges": {
                name: gauge.value
                for name, gauge in gauges
                if gauge.value is not None
            },
            "histograms": {
                name: stats
                for name, stats in hist_stats.items()
                if stats["count"]
            },
        }

    def rolling_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Trailing-window stats for every rolling histogram with data.

        Keyed by instrument name; each value is the instrument's
        :meth:`~repro.obs.live.RollingHistogram.stats` dict (count,
        total, min/max, p50/p95/p99, window_s). Kept out of
        :meth:`snapshot` so cumulative diff/merge semantics — and the
        serial-equals-parallel equality they guarantee — are untouched.
        """
        with self._create_lock:
            rolling = sorted(self._rolling.items())
        return {
            name: stats
            for name, stats in ((name, inst.stats()) for name, inst in rolling)
            if stats["count"]
        }

    @staticmethod
    def diff(
        before: Dict[str, Dict[str, object]],
        after: Dict[str, Dict[str, object]],
    ) -> Dict[str, Dict[str, object]]:
        """The delta snapshot ``after - before``.

        Counters and histogram count/total subtract; zero counter deltas
        are dropped. Gauges and histogram min/max/quantiles keep their
        ``after`` values (a gauge has no meaningful difference).
        """
        counters = {}
        for name, value in after.get("counters", {}).items():
            delta = value - before.get("counters", {}).get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, stats in after.get("histograms", {}).items():
            prior = before.get("histograms", {}).get(
                name, {"count": 0, "total": 0.0}
            )
            count = stats["count"] - prior["count"]
            if count:
                histograms[name] = {
                    **stats,
                    "count": count,
                    "total": stats["total"] - prior["total"],
                }
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms,
        }

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a (delta) snapshot into this registry.

        Counter values and histogram count/total add; gauges overwrite;
        histogram min/max combine. Used by the sweep runner to absorb
        worker-side metric deltas, and commutative over counters so the
        merged totals match the serial run regardless of completion
        order.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, stats in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            with hist._lock:
                hist.count += stats.get("count", 0)
                hist.total += stats.get("total", 0.0)
                for bound, pick in (("min", min), ("max", max)):
                    incoming = stats.get(bound)
                    if incoming is not None:
                        current = getattr(hist, bound)
                        setattr(
                            hist,
                            bound,
                            incoming
                            if current is None
                            else pick(current, incoming),
                        )

    def reset(self) -> None:
        """Drop every instrument (tests, or between CLI commands)."""
        with self._create_lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._rolling.clear()

    def counter_items(self) -> List[Tuple[str, float]]:
        """Sorted (name, value) counter pairs (for reports)."""
        return sorted(
            (name, counter.value) for name, counter in self._counters.items()
        )

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"MetricsRegistry({state}, {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )
