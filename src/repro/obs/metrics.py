"""A process-local registry of counters, gauges, and histograms.

Instruments are created on demand and live for the registry's lifetime::

    from repro.obs import registry

    registry().counter("sim.steps").inc()
    registry().counter("sim.csr.nnz").inc(csr.indices.size)
    registry().gauge("sim.cells").set(n_cells)
    registry().histogram("runner.task.wall_s").observe(wall)

Naming convention: dotted, lowercase, ``<layer>.<thing>[.<aspect>]``
(``runner.cache.hits``, ``locations.explode.rows``); units spelled out
as a suffix when not obvious (``_s``, ``_mbps``, ``_bytes``).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-ready dicts.
:meth:`MetricsRegistry.diff` subtracts two snapshots and
:meth:`MetricsRegistry.merge` adds one into a live registry — together
they are what makes metrics safe across ``ProcessPoolExecutor``
workers: each worker diffs its registry around a task and ships the
delta home, and merged parent counters equal the serial run's exactly
(counter adds are integer/float sums, so order does not matter).

Disabling the registry (``enabled = False``) turns every ``inc`` /
``set`` / ``observe`` into a single attribute check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Samples kept per histogram for percentile estimates. Observations
#: past the cap still update count/total/min/max.
HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """A monotonically increasing number (int or float)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.value: float = 0
        self._registry = registry

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1); no-op when the registry is disabled."""
        if self._registry.enabled:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.value: Optional[float] = None
        self._registry = registry

    def set(self, value: float) -> None:
        """Record the current value; no-op when the registry is disabled."""
        if self._registry.enabled:
            self.value = value


class Histogram:
    """Count/total/min/max plus a bounded sample reservoir for quantiles."""

    __slots__ = ("name", "count", "total", "min", "max", "samples", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self._registry = registry

    def observe(self, value: float) -> None:
        """Record one observation; no-op when the registry is disabled."""
        if not self._registry.enabled:
            return
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the retained samples (None if empty)."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]


class MetricsRegistry:
    """All instruments of one process, keyed by name."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first touch) -----------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, self)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, self)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, self)
        return instrument

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready copy of every instrument's current state."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
                if gauge.value is not None
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "p50": hist.quantile(0.50),
                    "p95": hist.quantile(0.95),
                }
                for name, hist in sorted(self._histograms.items())
                if hist.count
            },
        }

    @staticmethod
    def diff(
        before: Dict[str, Dict[str, object]],
        after: Dict[str, Dict[str, object]],
    ) -> Dict[str, Dict[str, object]]:
        """The delta snapshot ``after - before``.

        Counters and histogram count/total subtract; zero counter deltas
        are dropped. Gauges and histogram min/max/quantiles keep their
        ``after`` values (a gauge has no meaningful difference).
        """
        counters = {}
        for name, value in after.get("counters", {}).items():
            delta = value - before.get("counters", {}).get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, stats in after.get("histograms", {}).items():
            prior = before.get("histograms", {}).get(
                name, {"count": 0, "total": 0.0}
            )
            count = stats["count"] - prior["count"]
            if count:
                histograms[name] = {
                    **stats,
                    "count": count,
                    "total": stats["total"] - prior["total"],
                }
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms,
        }

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a (delta) snapshot into this registry.

        Counter values and histogram count/total add; gauges overwrite;
        histogram min/max combine. Used by the sweep runner to absorb
        worker-side metric deltas, and commutative over counters so the
        merged totals match the serial run regardless of completion
        order.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, stats in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += stats.get("count", 0)
            hist.total += stats.get("total", 0.0)
            for bound, pick in (("min", min), ("max", max)):
                incoming = stats.get(bound)
                if incoming is not None:
                    current = getattr(hist, bound)
                    setattr(
                        hist,
                        bound,
                        incoming if current is None else pick(current, incoming),
                    )

    def reset(self) -> None:
        """Drop every instrument (tests, or between CLI commands)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def counter_items(self) -> List[Tuple[str, float]]:
        """Sorted (name, value) counter pairs (for reports)."""
        return sorted(
            (name, counter.value) for name, counter in self._counters.items()
        )

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"MetricsRegistry({state}, {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )
