"""Run manifests: the provenance record written next to every output.

A :class:`RunManifest` captures everything needed to audit (or exactly
re-run) one sweep, bench, or simulation: the command and argv, git
commit, a hash of the swept/benched parameters, the dataset
fingerprint, the engine choice, the full span forest, and a metrics
snapshot. ``repro-divide report <manifest>`` renders it back (see
:mod:`repro.obs.report`).

Manifests are plain JSON, schema-tagged ``repro-run-manifest/1``, and
live next to the output they describe: ``sweep.csv`` gets
``sweep.manifest.json`` (:func:`manifest_path_for`).
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "collect_manifest",
    "git_sha",
    "manifest_path_for",
]

#: Schema tag every manifest carries.
MANIFEST_SCHEMA = "repro-run-manifest/1"


def git_sha() -> str:
    """The repository HEAD commit, or ``"unknown"`` outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except Exception:
        return "unknown"


def manifest_path_for(out_path: Union[str, Path]) -> Path:
    """Where the manifest for an output file lives (same stem, same dir)."""
    target = Path(out_path)
    return target.with_name(f"{target.stem}.manifest.json")


@dataclass
class RunManifest:
    """Provenance + telemetry of one run, JSON round-trippable."""

    command: str
    argv: List[str] = field(default_factory=list)
    created_unix: float = 0.0
    commit: str = "unknown"
    params_hash: Optional[str] = None
    dataset_fingerprint: Optional[str] = None
    engine: Optional[str] = None
    spans: List[Dict] = field(default_factory=list)
    metrics: Dict[str, Dict] = field(default_factory=dict)
    events_path: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form, schema-tagged."""
        return {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "argv": list(self.argv),
            "created_unix": self.created_unix,
            "commit": self.commit,
            "params_hash": self.params_hash,
            "dataset_fingerprint": self.dataset_fingerprint,
            "engine": self.engine,
            "spans": self.spans,
            "metrics": self.metrics,
            "events_path": self.events_path,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunManifest":
        """Inverse of :meth:`as_dict`; validates the schema tag."""
        schema = payload.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ReproError(
                f"not a run manifest (schema {schema!r}, "
                f"expected {MANIFEST_SCHEMA!r})"
            )
        return cls(
            command=str(payload.get("command", "")),
            argv=list(payload.get("argv", [])),
            created_unix=float(payload.get("created_unix", 0.0)),
            commit=str(payload.get("commit", "unknown")),
            params_hash=payload.get("params_hash"),
            dataset_fingerprint=payload.get("dataset_fingerprint"),
            engine=payload.get("engine"),
            spans=list(payload.get("spans", [])),
            metrics=dict(payload.get("metrics", {})),
            events_path=payload.get("events_path"),
            extra=dict(payload.get("extra", {})),
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Persist as pretty-printed JSON; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True, default=str)
            + "\n"
        )
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Read a manifest written by :meth:`write`."""
        file_path = Path(path)
        if not file_path.exists():
            raise ReproError(f"no such manifest: {file_path}")
        try:
            payload = json.loads(file_path.read_text())
        except json.JSONDecodeError as exc:
            raise ReproError(f"{file_path}: malformed manifest JSON") from exc
        return cls.from_dict(payload)


def collect_manifest(
    command: str,
    argv: Optional[List[str]] = None,
    params_hash: Optional[str] = None,
    dataset_fingerprint: Optional[str] = None,
    engine: Optional[str] = None,
    events_path: Optional[Union[str, Path]] = None,
    extra: Optional[Dict[str, object]] = None,
    tracer=None,
    registry=None,
) -> RunManifest:
    """Assemble a manifest from the (global, by default) tracer/registry."""
    from repro import obs

    tracer = tracer if tracer is not None else obs.tracer()
    registry = registry if registry is not None else obs.registry()
    return RunManifest(
        command=command,
        argv=list(argv) if argv is not None else [],
        created_unix=time.time(),
        commit=git_sha(),
        params_hash=params_hash,
        dataset_fingerprint=dataset_fingerprint,
        engine=engine,
        spans=tracer.as_dicts(),
        metrics=registry.snapshot(),
        events_path=str(events_path) if events_path else None,
        extra=dict(extra or {}),
    )
