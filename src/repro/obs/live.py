"""Live telemetry: rolling-window histograms and in-flight sweep streaming.

Three pieces, all stdlib-only:

* :class:`RollingHistogram` — a ring of time buckets giving p50/p95/p99
  over the trailing window (the cumulative :class:`~repro.obs.metrics.
  Histogram` answers "since the process started"; this answers "in the
  last minute"). Buckets are keyed by *absolute* epoch index, which
  makes merge semantics exact: merging two rolling histograms that
  observed disjoint halves of a stream equals observing the whole
  stream, and expired buckets can never resurrect samples.

* :class:`WorkerStreamer` — runs inside a sweep worker process and
  periodically flushes the worker's cumulative-within-task metrics
  delta plus a heartbeat (task index, attempt, phase, wall-so-far) to
  the parent over a ``multiprocessing`` manager queue. Heartbeats are
  *activity-gated*: the streamer only beats while the worker's main
  thread shows signs of life (its top frame moved, process CPU time
  advanced, or new metrics appeared), so a genuinely hung task goes
  silent and the parent watchdog can see it.

* :class:`LiveMonitor` — runs in the sweep parent: owns the queue,
  drains worker messages on a daemon thread, keeps a live aggregate
  view (authoritative registry + in-flight deltas, replace-not-fold so
  nothing double counts), and flags stalled tasks (no beat for
  ``stall_beats`` × interval) as ``runner.task.stalls`` *before* the
  task timeout fires.

The live aggregate is strictly a *view*: the authoritative end-of-task
delta still arrives through the task result and is merged exactly as
before, so a sweep run with streaming enabled produces a final snapshot
identical to the non-streaming run.
"""

from __future__ import annotations

import os
import queue as _queue
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.writer import get_logger

__all__ = [
    "LiveMonitor",
    "RollingHistogram",
    "WorkerStreamer",
    "ROLLING_SAMPLE_CAP",
]

_log = get_logger("obs.live")

#: Samples kept per rolling bucket for percentile estimates; past the
#: cap, observations still update the bucket's count/total/min/max.
ROLLING_SAMPLE_CAP = 1024

#: Default flush/heartbeat interval for worker streaming (seconds).
DEFAULT_STREAM_INTERVAL_S = 0.2

#: Default number of silent intervals before a task is flagged stalled.
DEFAULT_STALL_BEATS = 5


class _Bucket:
    """One time slot of a rolling histogram (mutable, lock-protected)."""

    __slots__ = ("epoch", "count", "total", "min", "max", "samples")

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.samples) < ROLLING_SAMPLE_CAP:
            self.samples.append(value)

    def absorb(self, other: "_Bucket") -> None:
        self.count += other.count
        self.total += other.total
        for value in (other.min, other.max):
            if value is None:
                continue
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
        room = ROLLING_SAMPLE_CAP - len(self.samples)
        if room > 0:
            self.samples.extend(other.samples[:room])

    def copy(self) -> "_Bucket":
        twin = _Bucket(self.epoch)
        twin.count = self.count
        twin.total = self.total
        twin.min = self.min
        twin.max = self.max
        twin.samples = list(self.samples)
        return twin


class RollingHistogram:
    """Trailing-window quantiles over a ring of time buckets.

    The window (``window_s``) is divided into ``buckets`` equal slots;
    each slot is keyed by its absolute epoch index
    ``int(now / bucket_s)``, so two instruments sharing a clock agree on
    bucket boundaries and :meth:`merge` can align them exactly. A slot
    is recycled in place when the ring wraps onto a newer epoch, which
    is what makes expiry permanent: stats only read slots whose epoch is
    inside the current window, and an overwritten slot's samples are
    gone.

    ``clock`` defaults to :func:`time.monotonic`; tests inject a fake
    for deterministic decay, and every public method also accepts an
    explicit ``now``.
    """

    __slots__ = (
        "name",
        "window_s",
        "buckets",
        "bucket_s",
        "_ring",
        "_clock",
        "_registry",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        window_s: float = 60.0,
        buckets: int = 12,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[object] = None,
    ):
        if window_s <= 0:
            raise ReproError(f"rolling window must be positive, got {window_s}")
        if buckets < 1:
            raise ReproError(f"rolling buckets must be >= 1, got {buckets}")
        self.name = name
        self.window_s = float(window_s)
        self.buckets = int(buckets)
        self.bucket_s = self.window_s / self.buckets
        self._ring: List[Optional[_Bucket]] = [None] * self.buckets
        self._clock = clock if clock is not None else time.monotonic
        self._registry = registry
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def _slot(self, epoch: int) -> _Bucket:
        index = epoch % self.buckets
        bucket = self._ring[index]
        if bucket is None or bucket.epoch < epoch:
            bucket = self._ring[index] = _Bucket(epoch)
        return bucket

    def observe(self, value: float, now: Optional[float] = None) -> None:
        """Record one observation into the current time bucket."""
        if self._registry is not None and not self._registry.enabled:
            return
        if now is None:
            now = self._clock()
        epoch = int(now / self.bucket_s)
        with self._lock:
            bucket = self._slot(epoch)
            if bucket.epoch > epoch:
                return  # slot already recycled past this (stale) timestamp
            bucket.observe(float(value))

    # -- reading -------------------------------------------------------------

    def _live_buckets(self, now: float) -> List[_Bucket]:
        newest = int(now / self.bucket_s)
        oldest = newest - self.buckets + 1
        return [
            bucket
            for bucket in self._ring
            if bucket is not None and oldest <= bucket.epoch <= newest
        ]

    def stats(self, now: Optional[float] = None) -> Dict[str, object]:
        """count/total/min/max/p50/p95/p99 over the trailing window."""
        if now is None:
            now = self._clock()
        with self._lock:
            live = [bucket.copy() for bucket in self._live_buckets(now)]
        count = sum(bucket.count for bucket in live)
        total = sum(bucket.total for bucket in live)
        mins = [bucket.min for bucket in live if bucket.min is not None]
        maxs = [bucket.max for bucket in live if bucket.max is not None]
        ordered: List[float] = sorted(
            sample for bucket in live for sample in bucket.samples
        )

        def _rank(q: float) -> Optional[float]:
            if not ordered:
                return None
            return ordered[min(len(ordered) - 1, max(0, int(q * len(ordered))))]

        return {
            "count": count,
            "total": total,
            "min": min(mins) if mins else None,
            "max": max(maxs) if maxs else None,
            "p50": _rank(0.50),
            "p95": _rank(0.95),
            "p99": _rank(0.99),
            "window_s": self.window_s,
        }

    def quantile(self, q: float, now: Optional[float] = None) -> Optional[float]:
        """Nearest-rank quantile over the trailing window (None if empty)."""
        if now is None:
            now = self._clock()
        with self._lock:
            ordered = sorted(
                sample
                for bucket in self._live_buckets(now)
                for sample in bucket.samples
            )
        if not ordered:
            return None
        return ordered[min(len(ordered) - 1, max(0, int(q * len(ordered))))]

    # -- merging -------------------------------------------------------------

    def merge(self, other: "RollingHistogram") -> None:
        """Fold another rolling histogram's buckets into this one.

        Buckets align on absolute epochs, so the merge is exact: a slot
        holding the *same* epoch combines, an *older* slot is replaced,
        and an incoming bucket older than the resident one is dropped
        (it is expired relative to the newer data — expiry never runs
        backwards). Both instruments must share the window config.
        """
        if (self.window_s, self.buckets) != (other.window_s, other.buckets):
            raise ReproError(
                "cannot merge rolling histograms with different windows: "
                f"{self.window_s}s/{self.buckets} vs "
                f"{other.window_s}s/{other.buckets}"
            )
        with other._lock:
            incoming = [
                bucket.copy() for bucket in other._ring if bucket is not None
            ]
        with self._lock:
            for bucket in incoming:
                index = bucket.epoch % self.buckets
                resident = self._ring[index]
                if resident is None or resident.epoch < bucket.epoch:
                    self._ring[index] = bucket
                elif resident.epoch == bucket.epoch:
                    resident.absorb(bucket)
                # resident.epoch > bucket.epoch: incoming already expired

    def __repr__(self) -> str:
        return (
            f"RollingHistogram({self.name!r}, window_s={self.window_s}, "
            f"buckets={self.buckets})"
        )


# ---------------------------------------------------------------------------
# Worker side: periodic delta flush + activity-gated heartbeats
# ---------------------------------------------------------------------------


def _main_frame_signature() -> Optional[Tuple[int, int, int]]:
    """A cheap fingerprint of the main thread's top frame.

    Two consecutive identical signatures mean the main thread has not
    moved between samples — the co-evidence (with a flat CPU clock) of
    a hang. ``f_lasti`` catches movement within one line.
    """
    main_id = threading.main_thread().ident
    frame = sys._current_frames().get(main_id)
    if frame is None:
        return None
    return (id(frame.f_code), frame.f_lineno, frame.f_lasti)


class WorkerStreamer:
    """Streams metric deltas and heartbeats from a sweep worker.

    Lives as a process global in each worker (installed by
    ``_worker_init``), with a daemon thread waking every ``interval_s``
    seconds. While a task is running it ships the task's
    cumulative-so-far metrics delta (diff against the registry snapshot
    taken at task start — the parent *replaces* its copy, so resending
    the whole delta is idempotent) and, when the worker looks alive, a
    heartbeat. Liveness is judged from the streamer thread without
    cooperation from the task code: the main thread's top frame moved,
    process CPU time advanced (long native kernels hold one frame but
    burn CPU), or the metrics delta changed. A task stuck in
    ``time.sleep`` — or a deadlock — shows none of these, goes silent,
    and trips the parent watchdog.

    Queue sends are best-effort (``put_nowait`` behind try/except): live
    telemetry must never be able to fail a task.
    """

    #: Fraction of the interval the CPU clock must advance to count as
    #: alive while the main frame is pinned (native kernels).
    CPU_ACTIVE_FRACTION = 0.25

    def __init__(
        self,
        channel: "_queue.Queue",
        interval_s: float = DEFAULT_STREAM_INTERVAL_S,
        registry: Optional[object] = None,
        worker_id: Optional[str] = None,
    ):
        if interval_s <= 0:
            raise ReproError(
                f"stream interval must be positive, got {interval_s}"
            )
        if registry is None:
            from repro import obs

            registry = obs.registry()
        self._channel = channel
        self.interval_s = float(interval_s)
        self._registry = registry
        self.worker_id = worker_id or f"pid-{os.getpid()}"
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._task: Optional[Dict[str, object]] = None
        self._baseline: Optional[Dict[str, Dict[str, object]]] = None
        self._last_delta: Optional[Dict[str, Dict[str, object]]] = None
        self.sent = 0
        self.dropped = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the flush thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-streamer", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the flush thread and send a final goodbye beat."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval_s * 5)
        self._send({"kind": "bye"})

    # -- task hooks (called from the worker's main thread) -------------------

    def task_started(self, index: int, attempt: int) -> None:
        """Mark a task as running and snapshot the metrics baseline."""
        with self._lock:
            self._task = {
                "index": int(index),
                "attempt": int(attempt),
                "started": time.perf_counter(),
            }
            self._baseline = self._registry.snapshot()
            self._last_delta = None
        self._send(self._beat("task_start"))

    def task_finished(self, index: int, attempt: int, status: str = "ok") -> None:
        """Clear the running task and tell the parent to drop its delta."""
        with self._lock:
            self._task = None
            self._baseline = None
            self._last_delta = None
        self._send(
            {
                "kind": "task_end",
                "worker": self.worker_id,
                "index": int(index),
                "attempt": int(attempt),
                "status": status,
            }
        )

    # -- internals -----------------------------------------------------------

    def _phase(self) -> str:
        """Name of the innermost open span (best-effort, racy read)."""
        try:
            from repro import obs

            tracer = obs.tracer()
            if tracer._stack:
                return tracer.records[tracer._stack[-1]].name
        except Exception:
            pass
        return "running"

    def _beat(self, kind: str = "beat") -> Dict[str, object]:
        with self._lock:
            task = dict(self._task) if self._task else None
        message: Dict[str, object] = {"kind": kind, "worker": self.worker_id}
        if task is not None:
            message.update(
                index=task["index"],
                attempt=task["attempt"],
                phase=self._phase(),
                wall_so_far=time.perf_counter() - task["started"],
            )
        return message

    def _send(self, message: Dict[str, object]) -> None:
        try:
            self._channel.put_nowait(message)
            self.sent += 1
        except Exception:
            self.dropped += 1

    def _flush_delta(self) -> bool:
        """Ship the task's cumulative delta if it changed; True if so."""
        with self._lock:
            task = dict(self._task) if self._task else None
            baseline = self._baseline
            last = self._last_delta
        if task is None or baseline is None:
            return False
        from repro.obs.metrics import MetricsRegistry

        delta = MetricsRegistry.diff(baseline, self._registry.snapshot())
        if not (delta["counters"] or delta["gauges"] or delta["histograms"]):
            return False
        if delta == last:
            return False
        with self._lock:
            self._last_delta = delta
        self._send(
            {
                "kind": "metrics",
                "worker": self.worker_id,
                "index": task["index"],
                "attempt": task["attempt"],
                "delta": delta,
            }
        )
        return True

    def _loop(self) -> None:
        prev_sig = _main_frame_signature()
        prev_cpu = time.process_time()
        while not self._stop.wait(self.interval_s):
            try:
                metrics_moved = self._flush_delta()
                sig = _main_frame_signature()
                cpu = time.process_time()
                cpu_moved = (
                    cpu - prev_cpu >= self.CPU_ACTIVE_FRACTION * self.interval_s
                )
                frame_moved = sig != prev_sig
                prev_sig, prev_cpu = sig, cpu
                with self._lock:
                    idle = self._task is None
                if idle:
                    # Between tasks the worker is healthy by definition.
                    self._send(self._beat())
                elif metrics_moved or cpu_moved or frame_moved:
                    self._send(self._beat())
                # else: pinned frame, flat CPU, no new metrics — a hang;
                # stay silent so the parent watchdog can flag it.
            except Exception:  # pragma: no cover - never kill the worker
                pass


# ---------------------------------------------------------------------------
# Parent side: queue drain, live aggregate, stall watchdog
# ---------------------------------------------------------------------------


class _WorkerState:
    """What the parent knows about one streaming worker."""

    __slots__ = ("last_beat", "task", "phase", "wall_so_far", "flagged")

    def __init__(self, now: float):
        self.last_beat = now
        self.task: Optional[Tuple[int, int]] = None  # (index, attempt)
        self.phase: Optional[str] = None
        self.wall_so_far: float = 0.0
        self.flagged = False


class LiveMonitor:
    """Parent-side hub for in-flight sweep telemetry.

    Owns a ``multiprocessing.Manager`` queue (a manager proxy is the
    one queue flavor that can ride through ``ProcessPoolExecutor``
    initargs under both fork and spawn), drains it on a daemon thread,
    and keeps:

    * ``inflight`` — the latest cumulative-within-task metrics delta per
      worker, *replaced* on every flush and dropped at task end, so
      :meth:`live_snapshot` (authoritative registry + in-flight deltas,
      merged into a scratch registry) is exact and never double counts;
    * a per-worker heartbeat clock — a worker with a running task and no
      beat for ``stall_beats × interval_s`` seconds is flagged once as
      stalled: ``runner.task.stalls`` is incremented on the main
      registry, a warning lands in progress output, and the event is
      recorded in :attr:`stall_events`. A later beat from the same task
      clears the flag (and is logged as a resume).

    For tests, ``channel`` may be any queue-like object (e.g. a plain
    ``queue.Queue``); a manager is only spun up when none is given.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_STREAM_INTERVAL_S,
        stall_beats: int = DEFAULT_STALL_BEATS,
        registry: Optional[object] = None,
        channel: Optional["_queue.Queue"] = None,
        on_stall: Optional[Callable[[Dict[str, object]], None]] = None,
    ):
        if interval_s <= 0:
            raise ReproError(
                f"stream interval must be positive, got {interval_s}"
            )
        if stall_beats < 1:
            raise ReproError(f"stall_beats must be >= 1, got {stall_beats}")
        if registry is None:
            from repro import obs

            registry = obs.registry()
        self.interval_s = float(interval_s)
        self.stall_beats = int(stall_beats)
        self._registry = registry
        self._on_stall = on_stall
        self._manager = None
        if channel is None:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            channel = self._manager.Queue()
        self.channel = channel
        self._lock = threading.Lock()
        self._workers: Dict[str, _WorkerState] = {}
        self._inflight: Dict[str, Dict[str, Dict[str, object]]] = {}
        self.stall_events: List[Dict[str, object]] = []
        self.resume_events: List[Dict[str, object]] = []
        self.messages = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def worker_spec(self) -> Tuple["_queue.Queue", float]:
        """The ``(queue, interval_s)`` pair shipped to ``_worker_init``."""
        return (self.channel, self.interval_s)

    def start(self) -> None:
        """Start the drain/watchdog thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the drain thread, then drain any queued messages."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(1.0, self.interval_s * 10))
        self._drain(block=False)

    def close(self) -> None:
        """Stop and shut down the owned manager (if any)."""
        self.stop()
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            self._manager = None

    # -- message processing --------------------------------------------------

    def _loop(self) -> None:
        wait_s = self.interval_s / 2
        while not self._stop.is_set():
            try:
                message = self.channel.get(timeout=wait_s)
            except _queue.Empty:
                pass
            except (EOFError, OSError, BrokenPipeError):
                break  # manager went away (teardown)
            except Exception:  # pragma: no cover - defensive
                break
            else:
                self._process(message)
            self._check_stalls()

    def _drain(self, block: bool = False) -> None:
        while True:
            try:
                message = self.channel.get_nowait()
            except Exception:
                return
            self._process(message)

    def _process(self, message: Dict[str, object]) -> None:
        if not isinstance(message, dict):
            return
        kind = message.get("kind")
        worker = str(message.get("worker", "?"))
        now = time.monotonic()
        with self._lock:
            state = self._workers.get(worker)
            if state is None:
                state = self._workers[worker] = _WorkerState(now)
            state.last_beat = now
            self.messages += 1
            if kind in ("beat", "task_start"):
                index = message.get("index")
                if index is None:
                    state.task = None
                    state.phase = None
                else:
                    task = (int(index), int(message.get("attempt", 1)))
                    if state.flagged and state.task == task:
                        state.flagged = False
                        resume = {
                            "worker": worker,
                            "index": task[0],
                            "attempt": task[1],
                        }
                        self.resume_events.append(resume)
                        _log.warning(
                            "task %d (attempt %d) on %s resumed after stall",
                            task[0],
                            task[1],
                            worker,
                        )
                    if state.task != task:
                        state.flagged = False
                    state.task = task
                    state.phase = message.get("phase")
                    state.wall_so_far = float(message.get("wall_so_far", 0.0))
            elif kind == "metrics":
                delta = message.get("delta")
                if isinstance(delta, dict):
                    self._inflight[worker] = delta
            elif kind == "task_end":
                self._inflight.pop(worker, None)
                state.task = None
                state.phase = None
                state.flagged = False
            elif kind == "bye":
                self._inflight.pop(worker, None)
                self._workers.pop(worker, None)

    def _check_stalls(self) -> None:
        now = time.monotonic()
        budget = self.stall_beats * self.interval_s
        fired: List[Dict[str, object]] = []
        with self._lock:
            for worker, state in self._workers.items():
                if state.task is None or state.flagged:
                    continue
                silent = now - state.last_beat
                if silent < budget:
                    continue
                state.flagged = True
                event = {
                    "worker": worker,
                    "index": state.task[0],
                    "attempt": state.task[1],
                    "phase": state.phase,
                    "silent_s": silent,
                    "wall_so_far": state.wall_so_far,
                }
                self.stall_events.append(event)
                fired.append(event)
        for event in fired:
            self._registry.counter("runner.task.stalls").inc()
            _log.warning(
                "task %d (attempt %d) on %s looks stalled: no heartbeat "
                "for %.1fs (threshold %.1fs, last phase %s)",
                event["index"],
                event["attempt"],
                event["worker"],
                event["silent_s"],
                budget,
                event["phase"] or "?",
            )
            if self._on_stall is not None:
                try:
                    self._on_stall(event)
                except Exception:  # pragma: no cover - observer must not kill
                    pass

    # -- views ---------------------------------------------------------------

    def live_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Authoritative snapshot plus every in-flight worker delta.

        Built by merging into a scratch registry, so the authoritative
        one is never touched. Momentarily, between a task result being
        merged and its ``task_end`` message draining, a delta may be
        counted twice — the window is one flush interval and the view is
        display-only; the final snapshot is exact.
        """
        from repro.obs.metrics import MetricsRegistry

        scratch = MetricsRegistry()
        scratch.merge(self._registry.snapshot())
        with self._lock:
            deltas = [dict(delta) for delta in self._inflight.values()]
        for delta in deltas:
            scratch.merge(delta)
        return scratch.snapshot()

    def stalls(self) -> int:
        """Number of stall events flagged so far."""
        with self._lock:
            return len(self.stall_events)

    def workers_seen(self) -> int:
        """Number of distinct workers that have ever sent a message."""
        with self._lock:
            return len(self._workers)

    def __repr__(self) -> str:
        return (
            f"LiveMonitor(interval_s={self.interval_s}, "
            f"stall_beats={self.stall_beats}, "
            f"workers={self.workers_seen()}, stalls={self.stalls()})"
        )
