"""A dependency-free sampling profiler emitting folded-stack output.

A daemon thread wakes at a fixed rate (default 50 Hz), grabs
``sys._current_frames()``, walks the main thread's stack, and counts
each distinct stack as a ``module.function;module.function;...`` folded
line — the flamegraph-collapsed format that ``flamegraph.pl`` and
speedscope ingest directly::

    from repro.obs.profile import SamplingProfiler

    with SamplingProfiler(hz=50) as profiler:
        run_simulation(...)
    profiler.write("profile.folded.txt")
    # flamegraph.pl profile.folded.txt > profile.svg

Sampling costs one stack walk per tick regardless of what the target is
doing, so overhead stays bounded (<3% budget at 50 Hz — measured by
``repro-divide bench`` alongside the telemetry overhead). The profiler
never touches the profiled code: no tracing hooks, no
``sys.setprofile``, just periodic frame inspection, which also means
native (numpy) kernels show up attributed to the Python frame that
called them.

Exposed on the CLI as ``--profile[=HZ]`` for ``simulate``, ``sweep``
and ``bench``; the folded output lands next to the run's manifest and
its top self-time functions are summarized by ``repro-divide report``.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["SamplingProfiler", "DEFAULT_HZ", "MAX_STACK_DEPTH"]

#: Default sampling rate (samples per second).
DEFAULT_HZ = 50.0

#: Deepest stack recorded per sample; frames below the cut are dropped.
MAX_STACK_DEPTH = 128


def _frame_label(frame) -> str:
    """``module.function`` for one frame (module falls back to ``?``)."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


class SamplingProfiler:
    """Samples the main thread's stack at ``hz`` into folded-stack counts.

    Usable as a context manager or via explicit :meth:`start` /
    :meth:`stop`. Counts accumulate across start/stop cycles;
    :meth:`folded` renders them, :meth:`write` saves them, and
    :meth:`summary` returns the JSON-ready digest embedded in run
    manifests.

    Only the *main* thread is sampled (``threads="all"`` widens that to
    every thread except the sampler itself): the simulation, sweep
    parent loop, and CLI all do their work on the main thread, and
    excluding the sampler avoids profiling the profiler.
    """

    def __init__(self, hz: float = DEFAULT_HZ, threads: str = "main"):
        if not hz > 0:
            raise ReproError(f"profiler rate must be positive, got {hz}")
        if threads not in ("main", "all"):
            raise ReproError(
                f"threads must be 'main' or 'all', got {threads!r}"
            )
        self.hz = float(hz)
        self.interval_s = 1.0 / self.hz
        self.threads = threads
        self.counts: Dict[str, int] = {}
        self.samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self.elapsed_s = 0.0

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampling thread is currently alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start sampling (idempotent while running)."""
        if self.running:
            return
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and fold the elapsed wall time into the totals."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(1.0, self.interval_s * 10))
        self._thread = None
        if self._started_at is not None:
            self.elapsed_s += time.perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling ------------------------------------------------------------

    def _target_threads(self) -> List[int]:
        if self.threads == "main":
            ident = threading.main_thread().ident
            return [ident] if ident is not None else []
        me = threading.get_ident()
        return [ident for ident in sys._current_frames() if ident != me]

    def _sample_once(self) -> None:
        frames = sys._current_frames()
        targets = self._target_threads()
        took = False
        for ident in targets:
            frame = frames.get(ident)
            if frame is None:
                continue
            stack: List[str] = []
            while frame is not None and len(stack) < MAX_STACK_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            if not stack:
                continue
            key = ";".join(reversed(stack))
            with self._lock:
                self.counts[key] = self.counts.get(key, 0) + 1
            took = True
        if took:
            self.samples += 1

    def _loop(self) -> None:
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            try:
                self._sample_once()
            except Exception:  # pragma: no cover - sampling must not crash
                pass
            next_tick += self.interval_s
            delay = next_tick - time.perf_counter()
            if delay <= 0:
                next_tick = time.perf_counter()  # fell behind; don't burst
                continue
            self._stop.wait(delay)

    # -- output --------------------------------------------------------------

    def folded(self) -> str:
        """The counts in flamegraph-collapsed format, one stack per line."""
        with self._lock:
            items = sorted(self.counts.items())
        return "".join(f"{stack} {count}\n" for stack, count in items)

    def write(self, path) -> Path:
        """Write :meth:`folded` output to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.folded(), encoding="utf-8")
        return path

    def top_self(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` frames with the most *self* samples (leaf frames)."""
        totals: Dict[str, int] = {}
        with self._lock:
            items = list(self.counts.items())
        for stack, count in items:
            leaf = stack.rsplit(";", 1)[-1]
            totals[leaf] = totals.get(leaf, 0) + count
        return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def summary(self, top: int = 10) -> Dict[str, object]:
        """JSON-ready digest (hz, samples, stacks, elapsed, top self-time)."""
        return {
            "hz": self.hz,
            "samples": self.samples,
            "stacks": len(self.counts),
            "elapsed_s": self.elapsed_s,
            "top_self": [list(pair) for pair in self.top_self(top)],
        }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"SamplingProfiler(hz={self.hz:g}, {state}, "
            f"samples={self.samples})"
        )
