"""Prometheus text exposition for metrics snapshots.

Renders a :meth:`MetricsRegistry.snapshot` (plus an optional
:meth:`rolling_snapshot`) into the Prometheus text format (version
0.0.4), and serves it from a stdlib ``http.server`` thread::

    from repro.obs import registry
    from repro.obs.promtext import render_prometheus, start_metrics_server

    text = render_prometheus(registry().snapshot(),
                             registry().rolling_snapshot())
    server = start_metrics_server(9109)   # GET /metrics
    ...
    server.close()

Mapping:

* counters  → ``repro_<name>_total`` (TYPE counter);
* gauges    → ``repro_<name>`` (TYPE gauge);
* histograms → a TYPE summary: ``{quantile="0.5"}`` / ``{quantile=
  "0.95"}`` series plus ``_sum``/``_count``, with min/max as extra
  gauges (the exposition format has no min/max slot);
* rolling histograms → gauges labeled ``{quantile="...",window="60s"}``
  plus ``_count``, since a trailing window is by nature an
  instantaneous reading.

Dotted metric names (``runner.task.wall_s``) are sanitized to the
Prometheus charset (``repro_runner_task_wall_s``); sanitization is
injective over every name the codebase emits (tested), so no two
metrics collide.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

__all__ = [
    "MetricsServer",
    "render_prometheus",
    "sanitize_metric_name",
    "start_metrics_server",
]

#: Prefix stamped on every exposed metric name.
METRIC_PREFIX = "repro_"

#: Content-Type for the Prometheus text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """Map a dotted metric name onto the Prometheus charset.

    Every character outside ``[a-zA-Z0-9_:]`` becomes ``_``, and the
    result is prefixed (``repro_`` by default) — which also guarantees a
    legal leading character.
    """
    return prefix + _INVALID_CHARS.sub("_", name)


def _fmt(value: object) -> str:
    """One sample value in exposition syntax."""
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Dict[str, Dict[str, object]],
    rolling: Optional[Dict[str, Dict[str, object]]] = None,
    prefix: str = METRIC_PREFIX,
) -> str:
    """The snapshot (and optional rolling snapshot) as exposition text."""
    lines: List[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        pname = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        pname = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(value)}")

    for name, stats in sorted(snapshot.get("histograms", {}).items()):
        pname = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {pname} summary")
        for q in ("p50", "p95", "p99"):
            if stats.get(q) is None:
                continue
            quantile = f"0.{q[1:]}" if q != "p50" else "0.5"
            lines.append(
                f'{pname}{{quantile="{quantile}"}} {_fmt(stats[q])}'
            )
        lines.append(f"{pname}_sum {_fmt(stats.get('total', 0.0))}")
        lines.append(f"{pname}_count {_fmt(stats.get('count', 0))}")
        for bound in ("min", "max"):
            if stats.get(bound) is not None:
                lines.append(f"# TYPE {pname}_{bound} gauge")
                lines.append(f"{pname}_{bound} {_fmt(stats[bound])}")

    for name, stats in sorted((rolling or {}).items()):
        pname = sanitize_metric_name(name, prefix) + "_rolling"
        window = stats.get("window_s")
        label = f'window="{_fmt(window)}s"' if window is not None else ""
        lines.append(f"# TYPE {pname} gauge")
        for q, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if stats.get(q) is None:
                continue
            labels = f'quantile="{quantile}"' + (f",{label}" if label else "")
            lines.append(f"{pname}{{{labels}}} {_fmt(stats[q])}")
        lines.append(f"# TYPE {pname}_count gauge")
        suffix = f"{{{label}}}" if label else ""
        lines.append(f"{pname}_count{suffix} {_fmt(stats.get('count', 0))}")

    return "\n".join(lines) + "\n" if lines else ""


class MetricsServer:
    """A stdlib HTTP thread serving ``/metrics`` exposition text.

    Wraps a daemon-threaded :class:`ThreadingHTTPServer`; ``snapshot_fn``
    and ``rolling_fn`` are called per request, so a scraper always sees
    the current state (and, on a live sweep, the in-flight aggregate
    when the caller wires :meth:`LiveMonitor.live_snapshot` in).
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        snapshot_fn: Optional[Callable[[], Dict]] = None,
        rolling_fn: Optional[Callable[[], Dict]] = None,
        prefix: str = METRIC_PREFIX,
    ):
        if snapshot_fn is None or rolling_fn is None:
            from repro import obs

            if snapshot_fn is None:
                snapshot_fn = obs.registry().snapshot
            if rolling_fn is None:
                rolling_fn = obs.registry().rolling_snapshot
        self._snapshot_fn = snapshot_fn
        self._rolling_fn = rolling_fn
        self._prefix = prefix

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0].rstrip("/") not in (
                    "",
                    "/metrics",
                ):
                    self.send_error(404, "only /metrics is served")
                    return
                try:
                    body = render_prometheus(
                        outer._snapshot_fn(),
                        outer._rolling_fn(),
                        prefix=outer._prefix,
                    ).encode("utf-8")
                except Exception as exc:  # pragma: no cover - defensive
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self._server.server_port

    @property
    def host(self) -> str:
        """The bound host address."""
        return self._server.server_address[0]

    def close(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"MetricsServer(http://{self.host}:{self.port}/metrics)"


def start_metrics_server(
    port: int,
    host: str = "127.0.0.1",
    snapshot_fn: Optional[Callable[[], Dict]] = None,
    rolling_fn: Optional[Callable[[], Dict]] = None,
) -> MetricsServer:
    """Start a daemon ``/metrics`` endpoint; defaults to the global registry."""
    return MetricsServer(
        port, host=host, snapshot_fn=snapshot_fn, rolling_fn=rolling_fn
    )
