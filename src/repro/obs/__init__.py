"""Structured telemetry: spans, metrics, JSONL events, run manifests.

The observability layer of the reproduction. Dependency-free (stdlib
only), process-local, and cheap enough to leave on in the hot paths —
disabled instrumentation is a single attribute check
(``REPRO_TELEMETRY=0`` or :func:`configure`).

Four pieces, one per module:

* :mod:`repro.obs.spans` — nested :class:`Span <repro.obs.spans.SpanRecord>`
  timing with monotonic wall/CPU clocks (``with obs.span("sim.step"): ...``);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms with snapshot/diff/merge (safe across
  ``ProcessPoolExecutor`` workers);
* :mod:`repro.obs.writer` — the JSONL :class:`TelemetryWriter` event
  sink and the stdlib-``logging`` bridge (``--log-level``/``--log-json``);
* :mod:`repro.obs.manifest` / :mod:`repro.obs.report` — the
  :class:`RunManifest` written next to every sweep/bench output, and the
  ``repro-divide report`` renderer.

The module-level :func:`tracer` and :func:`registry` are the process
globals all instrumented code records into; :func:`reset` clears both
(each CLI command starts fresh, and so should tests).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.live import LiveMonitor, RollingHistogram, WorkerStreamer
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    collect_manifest,
    git_sha,
    manifest_path_for,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import SamplingProfiler
from repro.obs.promtext import (
    MetricsServer,
    render_prometheus,
    sanitize_metric_name,
    start_metrics_server,
)
from repro.obs.report import format_report
from repro.obs.spans import NULL_SPAN, SpanRecord, Timer, Tracer
from repro.obs.writer import (
    TelemetryWriter,
    get_logger,
    read_events,
    read_events_stats,
    setup_logging,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "LiveMonitor",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_SPAN",
    "RollingHistogram",
    "RunManifest",
    "SamplingProfiler",
    "SpanRecord",
    "TelemetryWriter",
    "Timer",
    "Tracer",
    "WorkerStreamer",
    "collect_manifest",
    "configure",
    "enabled",
    "format_report",
    "get_logger",
    "git_sha",
    "manifest_path_for",
    "read_events",
    "read_events_stats",
    "registry",
    "render_prometheus",
    "reset",
    "sanitize_metric_name",
    "setup_logging",
    "span",
    "start_metrics_server",
    "tracer",
]

#: Environment variable gating telemetry ("0"/"false"/"off" disable it).
TELEMETRY_ENV = "REPRO_TELEMETRY"


def _env_enabled() -> bool:
    value = os.environ.get(TELEMETRY_ENV, "1").strip().lower()
    return value not in ("0", "false", "off", "no")


_TRACER = Tracer(enabled=_env_enabled())
_REGISTRY = MetricsRegistry(enabled=_env_enabled())


def tracer() -> Tracer:
    """The process-global span tracer."""
    return _TRACER


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def span(name: str, **attrs: object):
    """Open a span on the global tracer (no-op when disabled)."""
    return _TRACER.span(name, **attrs)


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _TRACER.enabled


def configure(enabled: Optional[bool] = None) -> None:
    """Enable or disable telemetry process-wide (None leaves it alone)."""
    if enabled is not None:
        _TRACER.enabled = bool(enabled)
        _REGISTRY.enabled = bool(enabled)


def reset() -> None:
    """Clear all recorded spans and metrics (keeps the enabled state)."""
    _TRACER.reset()
    _REGISTRY.reset()
