"""Nested timing spans with monotonic wall and CPU clocks.

A :class:`Tracer` records a forest of :class:`SpanRecord` entries, one
per ``with tracer.span("name"):`` block. Spans nest: a span opened while
another is active becomes its child, so a finished run renders as a call
tree (see :mod:`repro.obs.report`). Wall time comes from
``time.perf_counter`` and CPU time from ``time.process_time`` — both
monotonic, neither affected by system clock changes.

The process-global tracer (:func:`tracer` / :func:`span`) is what the
instrumented hot paths use::

    from repro.obs import span

    with span("sim.visibility", engine="fast"):
        csr, lats = index.query(time_s)

When telemetry is disabled (:func:`repro.obs.configure` or the
``REPRO_TELEMETRY=0`` environment variable) ``span()`` returns a shared
no-op context manager — a single attribute check and no allocation, so
disabled instrumentation costs nothing measurable.

:class:`Timer` is the standalone form: the same two clocks without a
tracer, for code that wants numbers rather than records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SpanRecord", "Timer", "Tracer", "NullSpan", "NULL_SPAN"]


@dataclass
class SpanRecord:
    """One finished (or still-open) span in a tracer's forest."""

    index: int
    name: str
    parent: Optional[int]
    start_s: float
    wall_s: float = 0.0
    cpu_s: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by manifests and the JSONL sink)."""
        record: Dict[str, object] = {
            "index": self.index,
            "name": self.name,
            "parent": self.parent,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_dict(cls, payload: Dict) -> "SpanRecord":
        """Inverse of :meth:`as_dict`."""
        return cls(
            index=int(payload["index"]),
            name=str(payload["name"]),
            parent=(
                None if payload.get("parent") is None else int(payload["parent"])
            ),
            start_s=float(payload.get("start_s", 0.0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
            attrs=dict(payload.get("attrs", {})),
        )


class Timer:
    """Standalone wall/CPU stopwatch: ``with Timer() as t: ...; t.wall_s``."""

    __slots__ = ("wall_s", "cpu_s", "_wall0", "_cpu0")

    def __init__(self) -> None:
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def __enter__(self) -> "Timer":
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        return False


class NullSpan:
    """The shared no-op span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> "NullSpan":
        """Discard attributes (disabled path)."""
        return self


#: Singleton no-op span; ``tracer.span(...) is NULL_SPAN`` when disabled.
NULL_SPAN = NullSpan()


class _ActiveSpan:
    """Context manager that opens a :class:`SpanRecord` on entry."""

    __slots__ = ("_tracer", "_name", "_attrs", "_record", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: Optional[SpanRecord] = None

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        record = SpanRecord(
            index=len(tracer.records),
            name=self._name,
            parent=tracer._stack[-1] if tracer._stack else None,
            start_s=time.perf_counter() - tracer.epoch,
            attrs=self._attrs,
        )
        tracer.records.append(record)
        tracer._stack.append(record.index)
        self._record = record
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def set(self, **attrs: object) -> "_ActiveSpan":
        """Attach attributes to the span (e.g. row counts learned late)."""
        if self._record is not None:
            self._record.attrs.update(attrs)
        else:
            self._attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        record.wall_s = time.perf_counter() - self._wall0
        record.cpu_s = time.process_time() - self._cpu0
        if exc_type is not None:
            record.attrs["error"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] == record.index:
            stack.pop()
        return False


class Tracer:
    """A process-local recorder of nested spans.

    ``records`` accumulates in start order; ``parent`` indices encode
    the tree. ``reset()`` clears everything (tests, or between CLI
    commands); ``mark()``/``records_since()`` give a cheap way to
    capture just the spans of one operation.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[SpanRecord] = []
        self._stack: List[int] = []
        self.epoch = time.perf_counter()

    def span(self, name: str, **attrs: object):
        """A context manager recording one span (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def mark(self) -> int:
        """Position marker for :meth:`records_since`."""
        return len(self.records)

    def records_since(self, mark: int) -> List[SpanRecord]:
        """Spans recorded since :meth:`mark` was taken."""
        return self.records[mark:]

    def reset(self) -> None:
        """Drop all records and any open-span state."""
        self.records.clear()
        self._stack.clear()
        self.epoch = time.perf_counter()

    def as_dicts(self) -> List[Dict[str, object]]:
        """All records in JSON-ready form."""
        return [record.as_dict() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.records)} spans)"
