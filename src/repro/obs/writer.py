"""JSONL telemetry sink and the stdlib-``logging`` bridge.

:class:`TelemetryWriter` appends one JSON object per line to a file —
log records, finished spans, metric snapshots, trace rows — the
machine-readable twin of the human console output. Events are flushed
per line so a crashed run still leaves a readable file.

The logging bridge configures the package logger (``repro.*``) exactly
once per CLI invocation: :func:`setup_logging` installs a console
handler (plain or JSON formatting) and, when a writer is given, a
:class:`TelemetryLogHandler` that tees every record into the JSONL
stream. Library modules just do::

    from repro.obs import get_logger

    log = get_logger(__name__)
    log.info("sweep finished: %d tasks", n)

and inherit whatever the application configured. Nothing here touches
the root logger, so embedding applications stay in control.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, TextIO, Tuple, Union

from repro.errors import ReproError

__all__ = [
    "TelemetryWriter",
    "TelemetryLogHandler",
    "JsonLineFormatter",
    "read_events",
    "read_events_stats",
    "setup_logging",
    "get_logger",
]

#: Root of the package logger hierarchy the bridge configures.
PACKAGE_LOGGER = "repro"

#: Recognised ``--log-level`` names, lowest to highest severity.
LOG_LEVELS = ("debug", "info", "warning", "error")


class TelemetryWriter:
    """Append JSON-object events to a ``.jsonl`` file, one per line."""

    def __init__(self, path: Union[str, Path], append: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = self.path.open(
            "a" if append else "w", encoding="utf-8"
        )
        self.events_written = 0

    def emit(self, event: Mapping[str, object]) -> None:
        """Write one event; adds a ``ts`` epoch timestamp if absent."""
        if self._handle is None:
            raise ReproError(f"telemetry writer {self.path} is closed")
        payload = dict(event)
        payload.setdefault("ts", time.time())
        self._handle.write(json.dumps(payload, default=str) + "\n")
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"TelemetryWriter({str(self.path)!r}, {self.events_written} events)"


def read_events(path: Union[str, Path]) -> List[Dict]:
    """Load every event of a JSONL telemetry file (skipping blank lines).

    Strict: a malformed line raises :class:`ReproError`. Inspection
    paths that must survive a killed worker's truncated write use
    :func:`read_events_stats` instead.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"no such telemetry file: {file_path}")
    events = []
    with file_path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{file_path}:{line_number}: malformed telemetry event"
                ) from exc
    return events


def read_events_stats(path: Union[str, Path]) -> Tuple[List[Dict], int]:
    """Tolerant JSONL load: ``(events, malformed_line_count)``.

    A worker killed mid-write leaves a truncated trailing line; report
    tooling must still read everything else. Malformed (or non-object)
    lines are skipped and counted instead of raising; a missing file
    still raises, since that is a caller error, not stream damage.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"no such telemetry file: {file_path}")
    events: List[Dict] = []
    malformed = 0
    with file_path.open(encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                malformed += 1
    return events, malformed


class JsonLineFormatter(logging.Formatter):
    """Format log records as single-line JSON objects (``--log-json``)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "type": "log",
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TelemetryLogHandler(logging.Handler):
    """Tee log records into a :class:`TelemetryWriter` as ``log`` events."""

    def __init__(self, writer: TelemetryWriter, level: int = logging.NOTSET):
        super().__init__(level=level)
        self.writer = writer

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.writer.emit(
                {
                    "type": "log",
                    "ts": record.created,
                    "level": record.levelname,
                    "logger": record.name,
                    "message": record.getMessage(),
                }
            )
        except Exception:  # pragma: no cover - never break the logged code
            self.handleError(record)


def setup_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: Optional[TextIO] = None,
    writer: Optional[TelemetryWriter] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` package logger and return it.

    Replaces any handlers from a previous call, so repeated CLI
    invocations in one process (tests) always bind the *current*
    ``sys.stderr``. ``writer`` adds a JSONL tee that sees every record
    at or above DEBUG regardless of the console level.
    """
    if level not in LOG_LEVELS:
        raise ReproError(
            f"unknown log level {level!r}; known: {list(LOG_LEVELS)}"
        )
    logger = logging.getLogger(PACKAGE_LOGGER)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    console = logging.StreamHandler(stream if stream is not None else sys.stderr)
    console.setLevel(getattr(logging, level.upper()))
    console.setFormatter(
        JsonLineFormatter()
        if json_mode
        else logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(console)
    if writer is not None:
        logger.addHandler(TelemetryLogHandler(writer))
    # The logger itself stays wide open; per-handler levels filter.
    logger.setLevel(logging.DEBUG)
    logger.propagate = False
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (module ``__name__`` ok)."""
    if not name or name == PACKAGE_LOGGER:
        return logging.getLogger(PACKAGE_LOGGER)
    if name.startswith(PACKAGE_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER}.{name}")
