"""Time-series workloads over the step simulator: diurnal demand + churn.

The paper's capacity model is peak-static — one busy-hour snapshot. This
package turns the step engine into a *timeline* workload:

* :class:`DiurnalProfile` — per-county busy-hour demand curves, phased
  by county-seat longitude (local solar time), applied as per-step
  multipliers over the columnar dataset's provisioned demand;
* :class:`HandoverChurnModel` — reconnection penalty windows after
  serving-satellite changes, calibrated to the ~15 s reconnection
  pattern measured in "A Multifaceted Look at Starlink Performance"
  and emulated by LEONetEM;
* :func:`run_timeline` — drives sub-minute steps through the
  cached-candidate windowed visibility index and accumulates per-cell
  capacity/QoE timelines: coverage and served-location fractions per
  step, unserved-hours-per-day, and reconnection-outage minutes.

A flat profile with churn disabled reproduces the static pipeline's
:class:`~repro.sim.metrics.SimulationReport` byte-identically — the
differential the tests and the ``timeline-smoke`` CI job pin.
"""

from repro.timeline.churn import ChurnState, HandoverChurnModel
from repro.timeline.diurnal import (
    PROFILE_NAMES,
    DiurnalProfile,
    get_profile,
)
from repro.timeline.workload import (
    TimelineConfig,
    TimelineResult,
    read_timeline_jsonl,
    run_timeline,
    write_timeline_jsonl,
)

__all__ = [
    "PROFILE_NAMES",
    "ChurnState",
    "DiurnalProfile",
    "HandoverChurnModel",
    "TimelineConfig",
    "TimelineResult",
    "get_profile",
    "read_timeline_jsonl",
    "run_timeline",
    "write_timeline_jsonl",
]
