"""The timeline workload: diurnal demand + churn over the step engine.

:func:`run_timeline` drives a :class:`ConstellationSimulation` with
sub-minute steps (through the cached-candidate windowed visibility
index — ``window="auto"`` sizes candidate windows from the clock's
step), applying per-county diurnal multipliers to the provisioned
demand each step and charging handover-churn outage windows against
the allocated capacity. It accumulates per-cell QoE timelines the
static pipeline cannot express: unserved-hours-per-day and
reconnection-outage minutes.

**Static-identity differential.** With the flat profile and churn
disabled, every per-step demand override is bitwise equal to the
static ``demands_mbps`` (``base * 1.0`` is exact) and every derate
factor is exactly ``1.0``, so the timeline's
:class:`~repro.sim.metrics.SimulationReport` must equal the static
pipeline's field-for-field. :func:`run_timeline` verifies this
whenever the configuration is eligible and records the verdict in
:attr:`TimelineResult.flat_identical`; the tests and the
``timeline-smoke`` CI job assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.demand.dataset import DemandDataset
from repro.errors import SimulationError
from repro.orbits.shells import Shell
from repro.sim.assignment import (
    GreedyDemandFirst,
    ProportionalFair,
    StickyGreedy,
)
from repro.sim.engine import SimulationClock
from repro.sim.metrics import CoverageMetrics, SimulationReport
from repro.sim.simulation import ConstellationSimulation
from repro.timeline.churn import ChurnState, HandoverChurnModel
from repro.timeline.diurnal import DiurnalProfile

SECONDS_PER_DAY = 86400.0

_STRATEGIES = {
    "greedy": GreedyDemandFirst,
    "fair": ProportionalFair,
    "sticky": StickyGreedy,
}

STRATEGY_NAMES: Tuple[str, ...] = tuple(sorted(_STRATEGIES))
"""Strategy ids accepted by :class:`TimelineConfig`."""


@dataclass(frozen=True)
class TimelineConfig:
    """Shape of one timeline run."""

    duration_s: float
    step_s: float
    profile: DiurnalProfile = field(default_factory=DiurnalProfile.flat)
    churn: HandoverChurnModel = field(
        default_factory=HandoverChurnModel.disabled
    )
    oversubscription: float = 20.0
    strategy: str = "greedy"
    engine: str = "fast"
    visibility_window: Union[int, str] = "auto"
    start_s: float = 0.0
    verify_identity: Optional[bool] = None
    """``None`` verifies the static-identity differential exactly when
    eligible (flat profile, churn disabled); ``True`` forces the
    comparison run regardless; ``False`` skips it."""

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise SimulationError(
                f"unknown strategy {self.strategy!r}; "
                f"choose from {', '.join(STRATEGY_NAMES)}"
            )
        # Clock construction validates duration/step/start (finite,
        # positive, step <= duration) so a bad config fails here, not
        # mid-run.
        self.clock()

    def clock(self) -> SimulationClock:
        return SimulationClock(
            duration_s=self.duration_s,
            step_s=self.step_s,
            start_s=self.start_s,
        )

    @property
    def identity_eligible(self) -> bool:
        """True when the run must reproduce the static pipeline."""
        return self.profile.is_flat and self.churn.is_disabled


@dataclass
class TimelineResult:
    """Per-step and per-cell outputs of one timeline run."""

    config: TimelineConfig
    times_s: np.ndarray
    demand_mbps: np.ndarray
    allocated_mbps: np.ndarray
    effective_mbps: np.ndarray
    covered_fraction: np.ndarray
    served_location_fraction: np.ndarray
    handovers_per_step: np.ndarray
    reconnections_per_step: np.ndarray
    unserved_seconds: np.ndarray
    outage_seconds: np.ndarray
    handover_counts: np.ndarray
    reconnection_counts: np.ndarray
    location_counts: np.ndarray
    report: SimulationReport
    flat_identical: Optional[bool]

    @property
    def steps(self) -> int:
        return int(self.times_s.shape[0])

    @property
    def cells(self) -> int:
        return int(self.unserved_seconds.shape[0])

    @property
    def days(self) -> float:
        return float(self.config.duration_s) / SECONDS_PER_DAY

    def unserved_hours_per_day(self) -> np.ndarray:
        """Per-cell hours per day with unmet demand.

        A cell-step counts as unserved when its diurnal-scaled demand
        (before the per-cell capacity clamp) is positive and the
        assignment's allocation falls short of it — a *capacity*
        shortfall, whether from beam contention or from busy-hour
        demand exceeding the per-cell beam cap; transient churn
        outages are the separate :meth:`outage_minutes` metric. Each
        unserved step
        contributes ``step_s`` seconds, and the total is normalized by
        the run's length in days, so a cell unserved around the
        nightly busy hour in every simulated day scores the same
        whether the run covered one day or seven.
        """
        return self.unserved_seconds / 3600.0 / self.days

    def outage_minutes(self) -> np.ndarray:
        """Per-cell reconnection/handover outage minutes over the run."""
        return self.outage_seconds / 60.0

    def hourly_served_fraction(self) -> Tuple[np.ndarray, np.ndarray]:
        """(UTC hour labels, mean served-location fraction per hour).

        Buckets the per-step served-location fraction by UTC hour of
        day — the rows of a Fig-2-over-time grid. Hours the run never
        touched are NaN.
        """
        hours = np.mod(self.times_s / 3600.0, 24.0).astype(int)
        labels = np.arange(24)
        values = np.full(24, np.nan)
        for hour in labels:
            mask = hours == hour
            if mask.any():
                values[hour] = float(
                    self.served_location_fraction[mask].mean()
                )
        return labels, values


def _phase_longitudes(dataset: DemandDataset) -> np.ndarray:
    """Per-cell diurnal phase longitude: the county seat's longitude.

    Every cell in a county shares its seat's local clock, so a
    county's demand curve moves as one — matching how the paper
    aggregates unserved locations per county.
    """
    columns = dataset.to_columns()
    county = dataset.county_columns()
    position = np.searchsorted(county["county_id"], columns["county_id"])
    return county["seat_lon"][position]


def run_timeline(
    dataset: DemandDataset,
    shells: Sequence[Shell],
    config: TimelineConfig,
) -> TimelineResult:
    """Run the timeline workload and accumulate its QoE timelines."""
    simulation = ConstellationSimulation(
        shells,
        dataset,
        oversubscription=config.oversubscription,
        strategy=_STRATEGIES[config.strategy](),
        engine=config.engine,
        visibility_window=config.visibility_window,
    )
    clock = config.clock()
    counts = dataset.counts().astype(float)
    # Unclamped provisioned demand: the diurnal multiplier scales this
    # *before* the per-cell capacity clamp, so the busy hour can push a
    # cell into the clamp that the static model leaves below it. Same
    # expression as ConstellationSimulation's, so a 1.0 multiplier
    # reproduces simulation.demands_mbps bitwise.
    base_mbps = counts * 100.0 / config.oversubscription
    cap_mbps = simulation.beam_plan.cell_capacity_mbps
    phase_lon = _phase_longitudes(dataset)
    total_locations = float(counts.sum())

    cell_count = len(dataset.cells)
    metrics = CoverageMetrics(cell_count=cell_count)
    churn = ChurnState(cell_count, config.churn)
    unserved_seconds = np.zeros(cell_count)

    times: List[float] = []
    demand_series: List[float] = []
    allocated_series: List[float] = []
    effective_series: List[float] = []
    covered_series: List[float] = []
    served_series: List[float] = []
    handover_series: List[int] = []
    reconnection_series: List[int] = []

    registry = obs.registry()
    step_counter = registry.counter("timeline.steps")
    handover_counter = registry.counter("timeline.handovers")
    reconnection_counter = registry.counter("timeline.reconnections")
    outage_counter = registry.counter("timeline.outage_s")
    unserved_counter = registry.counter("timeline.unserved_cell_steps")

    if config.engine == "fast":
        simulation.visibility_index.configure_window(
            step_hint_s=clock.step_s
        )
    with obs.span(
        "timeline.run",
        cells=cell_count,
        satellites=simulation.satellite_count,
        steps=clock.step_count,
        profile=config.profile.name,
        strategy=config.strategy,
        engine=config.engine,
    ):
        for time_s in clock.times():
            multiplier = config.profile.cell_multipliers(time_s, phase_lon)
            scaled_mbps = base_mbps * multiplier
            demands = np.minimum(scaled_mbps, cap_mbps)
            outcome, in_view, sat_lats = simulation.step(time_s, demands)
            handovers_before = int(churn.handover_counts.sum())
            reconnections_before = int(churn.reconnection_counts.sum())
            outage_before = float(churn.outage_seconds.sum())
            effective = churn.apply_step(
                time_s,
                clock.step_s,
                outcome.serving_satellite,
                outcome.allocated_mbps,
            )
            metrics.record_step(
                covered=outcome.covered,
                allocated_mbps=effective,
                in_view_counts=in_view,
                satellite_latitudes=sat_lats,
                beams_used=outcome.beams_used,
                serving_satellite=outcome.serving_satellite,
            )
            # Capacity shortfall, not churn: a cell-step is unserved
            # when the allocation falls short of the *unclamped*
            # diurnal demand — either beam contention starved the cell
            # or its busy-hour demand exceeds the per-cell beam cap.
            # Transient churn outages are accounted separately
            # (outage_seconds), so a 1 s handover blip in a 30-minute
            # step does not void the whole step.
            unserved = (scaled_mbps > 0.0) & (
                outcome.allocated_mbps < scaled_mbps
            )
            unserved_seconds += np.where(unserved, clock.step_s, 0.0)
            served_locations = float(counts[~unserved].sum())

            step_handovers = (
                int(churn.handover_counts.sum()) - handovers_before
            )
            step_reconnections = (
                int(churn.reconnection_counts.sum()) - reconnections_before
            )
            step_counter.inc()
            handover_counter.inc(step_handovers)
            reconnection_counter.inc(step_reconnections)
            outage_counter.inc(
                float(churn.outage_seconds.sum()) - outage_before
            )
            unserved_counter.inc(int(unserved.sum()))

            times.append(time_s)
            demand_series.append(float(demands.sum()))
            allocated_series.append(float(outcome.allocated_mbps.sum()))
            effective_series.append(float(effective.sum()))
            covered_series.append(float(outcome.covered.mean()))
            served_series.append(
                served_locations / total_locations
                if total_locations > 0
                else 1.0
            )
            handover_series.append(step_handovers)
            reconnection_series.append(step_reconnections)

    report = simulation.report(metrics)
    flat_identical: Optional[bool] = None
    verify = (
        config.identity_eligible
        if config.verify_identity is None
        else config.verify_identity
    )
    if verify:
        flat_identical = _matches_static(
            dataset, shells, config, clock, report
        )
        registry.gauge("timeline.flat_identical").set(
            1.0 if flat_identical else 0.0
        )

    return TimelineResult(
        config=config,
        times_s=np.array(times),
        demand_mbps=np.array(demand_series),
        allocated_mbps=np.array(allocated_series),
        effective_mbps=np.array(effective_series),
        covered_fraction=np.array(covered_series),
        served_location_fraction=np.array(served_series),
        handovers_per_step=np.array(handover_series, dtype=np.int64),
        reconnections_per_step=np.array(
            reconnection_series, dtype=np.int64
        ),
        unserved_seconds=unserved_seconds,
        outage_seconds=churn.outage_seconds.copy(),
        handover_counts=churn.handover_counts.copy(),
        reconnection_counts=churn.reconnection_counts.copy(),
        location_counts=counts,
        report=report,
        flat_identical=flat_identical,
    )


def _matches_static(
    dataset: DemandDataset,
    shells: Sequence[Shell],
    config: TimelineConfig,
    clock: SimulationClock,
    timeline_report: SimulationReport,
) -> bool:
    """Compare the timeline's report against a fresh static run.

    Field-for-field dataclass equality — floats compared exactly, not
    approximately, because an eligible timeline run feeds the metric
    accumulators bit-identical inputs.
    """
    static = ConstellationSimulation(
        shells,
        dataset,
        oversubscription=config.oversubscription,
        strategy=_STRATEGIES[config.strategy](),
        engine=config.engine,
        visibility_window=config.visibility_window,
    )
    static_report = static.report(static.run(clock))
    return static_report == timeline_report


def write_timeline_jsonl(
    result: TimelineResult,
    path: Union[str, Path],
    writer: "obs.TelemetryWriter" = None,
) -> Path:
    """Persist a timeline as JSONL events through :class:`TelemetryWriter`.

    One ``timeline.run`` header, one ``timeline.step`` event per step,
    and a final ``timeline.cells`` event carrying the per-cell QoE
    arrays. Pass an open ``writer`` to append into an existing event
    stream; ``path`` is ignored then.
    """
    own_writer = writer is None
    if own_writer:
        writer = obs.TelemetryWriter(path)
    try:
        writer.emit(
            {
                "type": "timeline.run",
                "steps": result.steps,
                "cells": result.cells,
                "step_s": float(result.config.step_s),
                "duration_s": float(result.config.duration_s),
                "profile": result.config.profile.name,
                "strategy": result.config.strategy,
                "engine": result.config.engine,
                "oversubscription": float(result.config.oversubscription),
                "flat_identical": result.flat_identical,
            }
        )
        for step in range(result.steps):
            writer.emit(
                {
                    "type": "timeline.step",
                    "step": step,
                    "time_s": float(result.times_s[step]),
                    "demand_mbps": float(result.demand_mbps[step]),
                    "allocated_mbps": float(result.allocated_mbps[step]),
                    "effective_mbps": float(result.effective_mbps[step]),
                    "covered_fraction": float(
                        result.covered_fraction[step]
                    ),
                    "served_location_fraction": float(
                        result.served_location_fraction[step]
                    ),
                    "handovers": int(result.handovers_per_step[step]),
                    "reconnections": int(
                        result.reconnections_per_step[step]
                    ),
                }
            )
        writer.emit(
            {
                "type": "timeline.cells",
                "unserved_hours_per_day": result.unserved_hours_per_day().tolist(),
                "outage_minutes": result.outage_minutes().tolist(),
                "handover_counts": result.handover_counts.tolist(),
                "reconnection_counts": result.reconnection_counts.tolist(),
            }
        )
    finally:
        if own_writer:
            writer.close()
    return writer.path


def read_timeline_jsonl(path: Union[str, Path]) -> Dict[str, object]:
    """Reload a timeline written by :func:`write_timeline_jsonl`.

    Returns ``{"run": header dict, "steps": column arrays,
    "cells": per-cell arrays}``; ignores interleaved non-timeline
    events so a combined telemetry stream reads back fine.
    """
    events = obs.read_events(path)
    runs = [e for e in events if e.get("type") == "timeline.run"]
    steps = [e for e in events if e.get("type") == "timeline.step"]
    cells = [e for e in events if e.get("type") == "timeline.cells"]
    if not runs or not steps or not cells:
        raise SimulationError(f"no complete timeline in {path}")
    steps.sort(key=lambda e: int(e["step"]))
    step_columns = {
        "time_s": np.array([float(e["time_s"]) for e in steps]),
        "demand_mbps": np.array(
            [float(e["demand_mbps"]) for e in steps]
        ),
        "allocated_mbps": np.array(
            [float(e["allocated_mbps"]) for e in steps]
        ),
        "effective_mbps": np.array(
            [float(e["effective_mbps"]) for e in steps]
        ),
        "covered_fraction": np.array(
            [float(e["covered_fraction"]) for e in steps]
        ),
        "served_location_fraction": np.array(
            [float(e["served_location_fraction"]) for e in steps]
        ),
        "handovers": np.array(
            [int(e["handovers"]) for e in steps], dtype=np.int64
        ),
        "reconnections": np.array(
            [int(e["reconnections"]) for e in steps], dtype=np.int64
        ),
    }
    cell_columns = {
        "unserved_hours_per_day": np.array(
            cells[-1]["unserved_hours_per_day"], dtype=float
        ),
        "outage_minutes": np.array(
            cells[-1]["outage_minutes"], dtype=float
        ),
        "handover_counts": np.array(
            cells[-1]["handover_counts"], dtype=np.int64
        ),
        "reconnection_counts": np.array(
            cells[-1]["reconnection_counts"], dtype=np.int64
        ),
    }
    return {"run": runs[-1], "steps": step_columns, "cells": cell_columns}
