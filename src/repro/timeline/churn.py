"""Handover-churn model: reconnection penalty windows after transitions.

Measurement studies ("A Multifaceted Look at Starlink Performance",
and the LEONetEM emulator built on it) observe that Starlink terminals
reschedule their serving satellite on a 15-second cadence, and that a
reacquisition after a coverage gap costs on the order of that full
window before throughput recovers, while a planned make-before-break
handover costs far less. :class:`HandoverChurnModel` encodes both as
per-cell outage windows: when a step's serving-transition events fire
(the same :func:`~repro.sim.metrics.serving_transition_events` masks
the metrics accumulators use), the cell's allocated capacity is
derated by the fraction of the step its outage window covers.

With both penalty durations zero the derate factor is exactly ``1.0``
everywhere, so ``allocated * factor`` is bitwise equal to
``allocated`` — preserving the timeline's static-identity
differential.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.metrics import serving_transition_events

RECONNECT_OUTAGE_S = 15.0
"""Default post-gap reacquisition outage (~one scheduling interval)."""

HANDOVER_OUTAGE_S = 1.0
"""Default planned-handover disruption (make-before-break is cheap)."""


@dataclass(frozen=True)
class HandoverChurnModel:
    """Outage durations charged per serving-transition event."""

    reconnect_outage_s: float = RECONNECT_OUTAGE_S
    handover_outage_s: float = HANDOVER_OUTAGE_S

    def __post_init__(self) -> None:
        for name, value in (
            ("reconnect_outage_s", self.reconnect_outage_s),
            ("handover_outage_s", self.handover_outage_s),
        ):
            if not (math.isfinite(value) and value >= 0.0):
                raise SimulationError(
                    f"{name} must be finite and non-negative: {value!r}"
                )

    @classmethod
    def disabled(cls) -> "HandoverChurnModel":
        """No penalties — every step's capacity passes through exactly."""
        return cls(reconnect_outage_s=0.0, handover_outage_s=0.0)

    @property
    def is_disabled(self) -> bool:
        return self.reconnect_outage_s == 0.0 and self.handover_outage_s == 0.0


class ChurnState:
    """Per-cell churn bookkeeping threaded through a timeline run."""

    def __init__(self, cell_count: int, model: HandoverChurnModel):
        if cell_count <= 0:
            raise SimulationError(
                f"cell count must be positive: {cell_count!r}"
            )
        self.model = model
        self.cell_count = cell_count
        self.previous_serving: Optional[np.ndarray] = None
        self.last_covered_serving = np.full(cell_count, -1, dtype=np.int64)
        self.outage_until_s = np.full(cell_count, -np.inf)
        self.outage_seconds = np.zeros(cell_count)
        self.handover_counts = np.zeros(cell_count, dtype=np.int64)
        self.reconnection_counts = np.zeros(cell_count, dtype=np.int64)

    def apply_step(
        self,
        time_s: float,
        step_s: float,
        serving_satellite: np.ndarray,
        allocated_mbps: np.ndarray,
    ) -> np.ndarray:
        """Fold one step's transitions in; return derated capacity.

        Events detected at this step open (or extend — windows never
        shrink) an outage window starting at ``time_s``. The step's
        effective capacity is ``allocated * (1 - overlap/step)`` where
        ``overlap`` is how much of ``[time_s, time_s + step_s)`` the
        cell's window covers, so a 15 s reconnection outage blanks a
        15 s step entirely and derates a 60 s step by a quarter.
        """
        if serving_satellite.shape[0] != self.cell_count:
            raise SimulationError("serving array misaligned with cells")
        if allocated_mbps.shape[0] != self.cell_count:
            raise SimulationError("allocated array misaligned with cells")
        handover, reconnection = serving_transition_events(
            self.previous_serving,
            self.last_covered_serving,
            serving_satellite,
        )
        self.handover_counts += handover.astype(np.int64)
        self.reconnection_counts += reconnection.astype(np.int64)
        window_end = np.where(
            reconnection,
            time_s + self.model.reconnect_outage_s,
            np.where(
                handover, time_s + self.model.handover_outage_s, -np.inf
            ),
        )
        self.outage_until_s = np.maximum(self.outage_until_s, window_end)
        overlap_s = np.clip(self.outage_until_s - time_s, 0.0, step_s)
        covered = serving_satellite >= 0
        self.outage_seconds += np.where(covered, overlap_s, 0.0)
        factor = 1.0 - overlap_s / step_s
        effective = allocated_mbps * factor
        self.last_covered_serving = np.where(
            covered, serving_satellite, self.last_covered_serving
        )
        self.previous_serving = serving_satellite.copy()
        return effective
