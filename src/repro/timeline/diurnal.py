"""Diurnal demand profiles: per-county busy-hour multiplier curves.

A :class:`DiurnalProfile` is a piecewise-linear, 24-hour-periodic curve
of demand multipliers. Applied to a cell, the curve is evaluated at the
cell's *local solar hour* — UTC simulation time shifted by its county
seat's longitude (15 degrees per hour) — so an evening peak sweeps
west across the country instead of hitting every county at the same
UTC instant. That phase offset is what makes a national timeline
interesting: the busy hour is regional, and so is the capacity crunch.

The flat profile multiplies every cell by exactly ``1.0`` at every
instant, which keeps ``base * multiplier`` bitwise equal to ``base``
— the property the timeline's static-identity differential relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SimulationError

HOURS_PER_DAY = 24.0
_DEG_PER_HOUR = 15.0


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-hour-periodic piecewise-linear demand multiplier curve.

    ``hours`` are breakpoints in ``[0, 24)`` (strictly increasing);
    ``multipliers`` are the positive demand scale factors at those
    breakpoints. Between breakpoints the curve interpolates linearly,
    wrapping from the last breakpoint back to the first across
    midnight.
    """

    name: str
    hours: Tuple[float, ...]
    multipliers: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("diurnal profile needs a name")
        hours = np.asarray(self.hours, dtype=float)
        mults = np.asarray(self.multipliers, dtype=float)
        if hours.size == 0 or hours.size != mults.size:
            raise SimulationError(
                "diurnal profile needs matching, non-empty hour and "
                "multiplier breakpoints"
            )
        if not np.all(np.isfinite(hours)):
            raise SimulationError("diurnal breakpoint hours must be finite")
        if np.any(hours < 0.0) or np.any(hours >= HOURS_PER_DAY):
            raise SimulationError(
                "diurnal breakpoint hours must lie in [0, 24)"
            )
        if np.any(np.diff(hours) <= 0.0):
            raise SimulationError(
                "diurnal breakpoint hours must be strictly increasing"
            )
        if not np.all(np.isfinite(mults)) or np.any(mults <= 0.0):
            raise SimulationError(
                "diurnal multipliers must be finite and positive"
            )

    @property
    def is_flat(self) -> bool:
        """True when every breakpoint multiplier is exactly 1.0."""
        return all(m == 1.0 for m in self.multipliers)

    @property
    def peak_multiplier(self) -> float:
        return float(max(self.multipliers))

    @property
    def trough_multiplier(self) -> float:
        return float(min(self.multipliers))

    def multiplier_at(self, hour_of_day: np.ndarray) -> np.ndarray:
        """Evaluate the curve at (array of) local hours of day.

        Hours outside ``[0, 24)`` wrap; the curve itself wraps across
        midnight by padding the breakpoints one period on each side
        before interpolating.
        """
        hours = np.asarray(self.hours, dtype=float)
        mults = np.asarray(self.multipliers, dtype=float)
        wrapped = np.mod(np.asarray(hour_of_day, dtype=float), HOURS_PER_DAY)
        padded_hours = np.concatenate(
            [hours - HOURS_PER_DAY, hours, hours + HOURS_PER_DAY]
        )
        padded_mults = np.concatenate([mults, mults, mults])
        return np.interp(wrapped, padded_hours, padded_mults)

    def cell_multipliers(
        self, time_s: float, lon_deg: np.ndarray
    ) -> np.ndarray:
        """Per-cell multipliers at simulation time ``time_s``.

        ``lon_deg`` is each cell's phase longitude (the county seat's,
        in the timeline workload). Local solar hour is the UTC hour
        plus ``lon/15`` — negative for the western hemisphere, so a
        20:00 UTC instant is mid-afternoon on the US east coast and
        noon on the west.
        """
        local_hour = time_s / 3600.0 + np.asarray(lon_deg, dtype=float) / _DEG_PER_HOUR
        return self.multiplier_at(local_hour)

    @classmethod
    def flat(cls) -> "DiurnalProfile":
        """Unit multiplier at all hours — reproduces the static model."""
        return cls(name="flat", hours=(0.0,), multipliers=(1.0,))

    @classmethod
    def residential(cls) -> "DiurnalProfile":
        """Evening-peaked curve typical of residential broadband.

        Trough around 04:00 local, ramp through the workday, peak in
        the 20:00–22:00 window — the shape of the busy hour the
        paper's static oversubscription model implicitly prices.
        """
        return cls(
            name="residential",
            hours=(0.0, 4.0, 7.0, 12.0, 17.0, 20.0, 22.0, 23.5),
            multipliers=(0.7, 0.35, 0.6, 0.9, 1.1, 1.5, 1.4, 0.9),
        )

    @classmethod
    def business(cls) -> "DiurnalProfile":
        """Midday-peaked curve: working-hours load, quiet nights."""
        return cls(
            name="business",
            hours=(0.0, 5.0, 9.0, 13.0, 17.0, 20.0),
            multipliers=(0.3, 0.25, 1.2, 1.4, 1.0, 0.45),
        )


_PROFILES = {
    "flat": DiurnalProfile.flat,
    "residential": DiurnalProfile.residential,
    "business": DiurnalProfile.business,
}

PROFILE_NAMES: Tuple[str, ...] = tuple(sorted(_PROFILES))
"""Names accepted by :func:`get_profile` (and the CLI's ``--profile``)."""


def get_profile(name: str) -> DiurnalProfile:
    """Look up a built-in profile by name."""
    try:
        return _PROFILES[name]()
    except KeyError:
        raise SimulationError(
            f"unknown diurnal profile {name!r}; "
            f"choose from {', '.join(PROFILE_NAMES)}"
        ) from None
