"""County median-income model calibrated to the paper's affordability anchors.

The paper's F4 depends only on the **location-weighted** distribution of
county median household income at a few thresholds (what fraction of
un(der)served locations sit in counties below the 2 %-affordability income
for each plan). Those fractions are published in the paper, so the income
assignment here is built to match them *by construction*:

* 74.5 % of locations below $72,000/yr  (Starlink Residential, $120/mo)
* ~64.4 % below $66,450/yr              (with Lifeline, $110.75/mo)
* <0.01 % below $30,000/yr              (Spectrum $50/mo — "affordable to
  all residents for >99.99 % of locations", which also covers Xfinity's
  $24,000 threshold)

Counties are ranked poorest-first by an "underservice density" score
(unserved locations per county, with seeded noise) — encoding the paper's
observation that underservice concentrates along socioeconomic
marginalization — and incomes are read off a monotone quantile curve at
each county's location-weighted midpoint rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.demand.quantiles import QuantileCurve
from repro.errors import CalibrationError

#: Location-weighted income anchors: (cumulative location share, income $).
#:
#: Derivation from the paper: 74.5 % of locations below the $72,000 Starlink
#: threshold (F4); ~3.0 M of 4.66 M (64.4 %) below the $66,450 Lifeline
#: threshold (Fig 4 annotation); <0.01 % below the $36,000 Spectrum
#: threshold (">99.99 %" claim); and a floor of $28,800, the income at which
#: Fig 4's Starlink curves reach zero (x-intercepts 0.050 and 0.046 — note
#: 0.050/0.046 = 120/110.75, pinning min income = $1440/0.050 = $28,800).
DEFAULT_INCOME_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (0.0, 28800.0),
    (0.0001, 36000.0),
    (0.02, 40000.0),
    (0.30, 50000.0),
    (0.6438, 66450.0),
    (0.745, 72000.0),
    (0.92, 100000.0),
    (1.0, 150000.0),
)


@dataclass(frozen=True)
class IncomeModel:
    """Location-weighted county income quantile model."""

    anchors: Tuple[Tuple[float, float], ...] = DEFAULT_INCOME_ANCHORS
    noise_sd: float = 0.8
    #: How many of the poorest-ranked counties are re-sorted lightest-first
    #: so the extreme-poverty income floor is populated by small counties.
    poor_tail_reorder: int = 30

    def curve(self) -> QuantileCurve:
        return QuantileCurve(self.anchors)

    def assign_incomes(
        self,
        county_location_counts: Dict[int, int],
        rng: np.random.Generator,
    ) -> Dict[int, float]:
        """Median income per county id, matching the weighted anchors.

        Counties with zero un(der)served locations get incomes drawn from
        the upper half of the curve (served areas skew wealthier); they
        carry no weight in the affordability statistics either way.
        """
        if not county_location_counts:
            raise CalibrationError("no counties to assign incomes to")
        curve = self.curve()
        ids = np.array(sorted(county_location_counts), dtype=int)
        weights = np.array(
            [county_location_counts[i] for i in ids], dtype=float
        )
        total = weights.sum()
        incomes: Dict[int, float] = {}

        weighted_ids = ids[weights > 0]
        weighted_w = weights[weights > 0]
        if total > 0 and weighted_ids.size > 0:
            # Poverty score: more un(der)served locations -> poorer, but only
            # weakly (weight^0.25) and with lognormal noise, so that small
            # counties can occupy the extreme-poverty tail as they do in the
            # real income distribution. Any ordering preserves the weighted
            # quantile targets; the ordering only controls which counties
            # land where.
            noise = rng.lognormal(mean=0.0, sigma=self.noise_sd, size=weighted_ids.size)
            score = weighted_w**0.25 * noise
            order = np.argsort(-score)  # poorest first
            # The extreme-poverty tail is made of *small* counties (the
            # real minimum-income counties are sparsely populated): within
            # the poorest cohort, put the lightest counties first so the
            # income floor near q(0) is actually reached.
            cohort = min(self.poor_tail_reorder, order.size)
            head = order[:cohort]
            order[:cohort] = head[np.argsort(weighted_w[head], kind="stable")]
            sorted_ids = weighted_ids[order]
            sorted_w = weighted_w[order]
            cumulative = np.cumsum(sorted_w)
            midpoints = (cumulative - sorted_w / 2.0) / total
            values = curve.value(midpoints)
            for county_id, income in zip(sorted_ids, np.atleast_1d(values)):
                incomes[int(county_id)] = float(income)

        unweighted = ids[weights == 0]
        if unweighted.size > 0:
            positions = rng.uniform(0.5, 1.0, size=unweighted.size)
            values = np.atleast_1d(curve.value(positions))
            for county_id, income in zip(unweighted, values):
                incomes[int(county_id)] = float(income)
        return incomes
