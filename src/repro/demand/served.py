"""The served population and terrestrial "defection" (extension).

The paper's capacity analysis is explicitly a best case: "We ignore
additional demand from users who could choose to use terrestrial
Internet." This module quantifies that caveat. Each occupied cell also
contains *served* locations (homes with a 100/20 terrestrial offer); if a
fraction of them defect to Starlink — for price, bundling, or churn
reasons — they add to exactly the per-cell peaks that drive the model.

Served counts are synthesized per cell (lognormal, median ~800/cell — a
stated hypothesis, not data: a rural res-5 cell of ~253 km^2 at ~4-8
locations/km^2 holds on the order of 1,000-2,000 homes, most already
served) and are deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.capacity import SatelliteCapacityModel
from repro.demand.dataset import DemandDataset
from repro.errors import CapacityModelError


@dataclass(frozen=True)
class ServedLayerConfig:
    """Synthetic served-population parameters (documented hypothesis)."""

    seed: int = 404
    median_served_per_cell: float = 800.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.median_served_per_cell <= 0.0 or self.sigma <= 0.0:
            raise CapacityModelError("served-layer parameters must be positive")


class DefectionAnalysis:
    """Capacity pressure when served households defect to Starlink."""

    def __init__(
        self,
        dataset: DemandDataset,
        config: ServedLayerConfig | None = None,
        capacity: SatelliteCapacityModel | None = None,
    ):
        self.dataset = dataset
        self.config = config or ServedLayerConfig()
        self.capacity = capacity or SatelliteCapacityModel()
        rng = np.random.default_rng(self.config.seed)
        self._unserved = dataset.counts().astype(float)
        self._served = np.rint(
            rng.lognormal(
                mean=np.log(self.config.median_served_per_cell),
                sigma=self.config.sigma,
                size=self._unserved.shape[0],
            )
        ).astype(np.int64)

    def served_counts(self) -> np.ndarray:
        """Synthetic served locations per cell (copy)."""
        return self._served.copy()

    def effective_counts(self, defection_fraction: float) -> np.ndarray:
        """Un(der)served plus defecting served locations, per cell."""
        if not 0.0 <= defection_fraction <= 1.0:
            raise CapacityModelError(
                f"defection fraction out of [0, 1]: {defection_fraction!r}"
            )
        return self._unserved + defection_fraction * self._served

    def summary_at(self, defection_fraction: float) -> Dict[str, float]:
        """Peak load and unservable count at one defection level."""
        effective = self.effective_counts(defection_fraction)
        peak = float(effective.max())
        cap = self.capacity.max_locations_at_oversubscription(20.0)
        unservable = float(np.maximum(effective - cap, 0.0).sum())
        return {
            "defection_fraction": defection_fraction,
            "extra_subscribers": float(
                defection_fraction * self._served.sum()
            ),
            "peak_cell_load": peak,
            "required_oversubscription": self.capacity.required_oversubscription(
                int(round(peak))
            ),
            "unservable_at_20": unservable,
        }

    def sweep(self, fractions: Sequence[float]) -> List[Dict[str, float]]:
        """Summaries across defection levels."""
        return [self.summary_at(f) for f in fractions]

    def defection_that_doubles_floor(self) -> float:
        """Defection fraction at which the 20:1 unservable floor doubles.

        Bisection over [0, 1]; returns 1.0 if even full defection does not
        double it (it always will for realistic layers).
        """
        baseline = self.summary_at(0.0)["unservable_at_20"]
        if baseline <= 0.0:
            raise CapacityModelError("no baseline floor to double")
        target = 2.0 * baseline
        if self.summary_at(1.0)["unservable_at_20"] < target:
            return 1.0
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self.summary_at(mid)["unservable_at_20"] < target:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0
