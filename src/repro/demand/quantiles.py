"""Monotone quantile curves for synthetic-data calibration.

A :class:`QuantileCurve` is a monotone map from cumulative probability
``p in [0, 1]`` to a value, built from a handful of published anchor points
(e.g. the paper's "90th percentile: 552 locations/cell") with shape-
preserving PCHIP interpolation between them. Interpolating in log-value
space keeps heavy-tailed curves well behaved.

Sampling ``n`` values deterministically at the mid-quantile positions
``(i + 0.5) / n`` reproduces the curve's distribution essentially exactly,
which is what lets the synthetic broadband map hit the paper's statistics
by construction instead of by luck.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.errors import CalibrationError


class QuantileCurve:
    """Monotone quantile function through published anchor points."""

    def __init__(
        self,
        anchors: Sequence[Tuple[float, float]],
        log_space: bool = True,
    ):
        """Build the curve.

        Parameters
        ----------
        anchors:
            ``(probability, value)`` pairs; probabilities must be strictly
            increasing within [0, 1], values non-decreasing and positive
            when ``log_space`` is set.
        log_space:
            Interpolate in log(value) space (recommended for heavy tails).
        """
        if len(anchors) < 2:
            raise CalibrationError("need at least two anchors")
        probs = np.array([p for p, _ in anchors], dtype=float)
        values = np.array([v for _, v in anchors], dtype=float)
        if probs[0] < 0.0 or probs[-1] > 1.0:
            raise CalibrationError(f"anchor probabilities outside [0, 1]: {probs}")
        if np.any(np.diff(probs) <= 0.0):
            raise CalibrationError(f"anchor probabilities not increasing: {probs}")
        if np.any(np.diff(values) < 0.0):
            raise CalibrationError(f"anchor values decrease: {values}")
        self.log_space = log_space
        self._probs = probs
        self._values = values
        if log_space:
            if np.any(values <= 0.0):
                raise CalibrationError("log-space anchors must be positive")
            self._interp = PchipInterpolator(probs, np.log(values))
        else:
            self._interp = PchipInterpolator(probs, values)

    @property
    def anchors(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(zip(self._probs.tolist(), self._values.tolist()))

    def value(self, p) -> np.ndarray:
        """Quantile value(s) at probability ``p`` (scalar or array)."""
        p_arr = np.clip(np.asarray(p, dtype=float), self._probs[0], self._probs[-1])
        out = self._interp(p_arr)
        if self.log_space:
            out = np.exp(out)
        if out.ndim == 0:
            return float(out)
        return out

    def probability(self, value: float) -> float:
        """Inverse lookup: the probability at which the curve reaches ``value``.

        Clamped to the anchor range; uses bisection (the curve is monotone).
        """
        lo_v = self.value(self._probs[0])
        hi_v = self.value(self._probs[-1])
        if value <= lo_v:
            return float(self._probs[0])
        if value >= hi_v:
            return float(self._probs[-1])
        lo, hi = float(self._probs[0]), float(self._probs[-1])
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.value(mid) < value:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def sample_deterministic(self, n: int) -> np.ndarray:
        """``n`` values at mid-quantile positions (i + 0.5)/n, ascending."""
        if n <= 0:
            raise CalibrationError(f"sample size must be positive: {n!r}")
        positions = (np.arange(n) + 0.5) / n
        return np.asarray(self.value(positions), dtype=float)

    def sample_random(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` i.i.d. values via inverse-CDF sampling."""
        if n <= 0:
            raise CalibrationError(f"sample size must be positive: {n!r}")
        return np.asarray(self.value(rng.uniform(size=n)), dtype=float)

    def mean(self, resolution: int = 20001) -> float:
        """Numerical mean of the distribution (trapezoid over quantiles)."""
        positions = np.linspace(0.0, 1.0, resolution)
        values = np.asarray(self.value(positions), dtype=float)
        return float(np.trapezoid(values, positions))
