"""Fused demand kernels: batched-RNG explode and run-length aggregation.

:func:`repro.demand.locations.explode_cells_table` used to loop over
every (cell, service class) group, paying two ``Generator.uniform``
calls and one ``Generator.random`` call per group — at H3 resolution 6
that is ~290 k tiny RNG dispatches plus as many slice writes. The fused
kernel here (:func:`fused_explode_columns`) draws the raw uniform
doubles for *thousands of groups at once* and replays the reference
rejection sampler with pure array arithmetic:

* ``Generator.uniform(low, high, n)`` consumes exactly ``n`` raw
  doubles and equals ``low + (high - low) * Generator.random(n)``
  bit-for-bit, and consecutive ``random`` calls consume the same
  PCG64 stream as one batched call — so one ``rng.random(total)``
  per chunk reproduces every group's draws exactly;
* the reference sampler's first rejection round draws ``2c + 8``
  candidates per axis for ``c`` points and succeeds with probability
  ≈ 1 − 1e-6 per group; the fused kernel assumes one round, selects
  each group's first ``c`` in-hexagon candidates with a segmented
  cumulative-sum rank, and on any shortfall rewinds the generator
  (``bit_generator.state`` is snapshotted per chunk) and replays just
  that chunk through the scalar reference loop;
* offer draws are two 3-entry ``searchsorted`` passes (one per service
  class) over the same raw doubles ``Generator.choice`` would consume.

The result is **bit-identical** to the reference path — same positions,
same offers, same column order — proven by the differential tests in
``tests/demand/test_fused.py``.

:func:`runlength_unique_counts` is the shared aggregation kernel behind
the fused ``bin_table``: exploded tables arrive grouped by cell, so
compressing runs of equal keys first shrinks the ``np.unique`` sort
from one entry per *location* (4.66 M) to one per *run* (~the cell
count) while remaining correct for arbitrary key order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import obs
from repro.demand.dataset import DemandDataset
from repro.geo.hexgrid import HexGrid
from repro.geo.projection import EqualAreaProjection

__all__ = [
    "fused_explode_columns",
    "runlength_unique_counts",
]

#: Raw doubles drawn per chunk — bounds peak memory (~8 bytes each) while
#: amortizing RNG dispatch over thousands of groups.
_CHUNK_DRAWS = 4_000_000

#: Test hook: force every chunk down the rewind/replay path, proving the
#: generator snapshot/restore reproduces the reference stream exactly.
_FORCE_REWIND = False


def _group_layout(
    dataset: DemandDataset,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(counts, cell_index, service_class) per nonzero explode group.

    Groups appear in the reference iteration order: for each dataset
    cell, its unserved group then its underserved group, zero-count
    groups skipped (they consume no RNG draws).
    """
    columns = dataset.to_columns()
    n_cells = len(columns["cell_key"])
    pair_counts = np.stack(
        [columns["unserved"], columns["underserved"]], axis=1
    ).ravel()
    pair_cell = np.repeat(np.arange(n_cells, dtype=np.int64), 2)
    pair_class = np.tile(np.array([0, 1], dtype=np.int8), n_cells)
    live = pair_counts > 0
    return (
        pair_counts[live].astype(np.int64),
        pair_cell[live],
        pair_class[live],
    )


def fused_explode_columns(dataset: DemandDataset, seed: int, span):
    """Batched-RNG explode: the reference stream, thousands of groups at once.

    Returns a :class:`~repro.demand.locations.LocationTable` bit-identical
    to the per-group reference loop (``_explode_cells_table``).
    """
    from repro.demand.locations import (
        _ROOT3,
        _UNDERSERVED_COLUMNS,
        _UNSERVED_COLUMNS,
        LocationTable,
    )

    rng = np.random.default_rng(seed)
    grid = HexGrid(dataset.grid_resolution)
    projection = EqualAreaProjection()
    size_km = grid.hex_size_km
    apothem = size_km * _ROOT3 / 2.0

    columns = dataset.to_columns()
    cell_keys = columns["cell_key"]
    county_col = columns["county_id"]
    # Centers are re-derived from the grid, as the reference does — a
    # dataset's stored centers need not sit on the canonical grid.
    center_lat, center_lon = grid.centers_many(cell_keys)
    center_x, center_y = projection.forward_many(center_lat, center_lon)

    g_counts, g_cell, g_class = _group_layout(dataset)
    total = int(g_counts.sum())
    span.set(rows=total)
    registry = obs.registry()
    registry.counter("locations.explode.rows").inc(total)
    registry.counter("locations.explode.cells").inc(len(cell_keys))

    x = np.empty(total)
    y = np.empty(total)
    keys = np.empty(total, dtype=np.uint64)
    counties = np.empty(total, dtype=np.int64)
    technology = np.empty(total, dtype=np.int16)
    downlink = np.empty(total)
    uplink = np.empty(total)
    out = (x, y, keys, counties, technology, downlink, uplink)
    offers = (_UNSERVED_COLUMNS, _UNDERSERVED_COLUMNS)

    # Doubles one group consumes when its first rejection round fills it:
    # xs (2c + 8), ys (2c + 8), offer draws (c).
    g_draws = 5 * g_counts + 16
    row_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(g_counts)]
    )
    draw_ends = np.cumsum(g_draws)

    n_groups = len(g_counts)
    g0 = 0
    consumed = 0
    while g0 < n_groups:
        # Largest group range whose assumed draw total fits the chunk
        # budget (always at least one group).
        g1 = int(
            np.searchsorted(draw_ends, consumed + _CHUNK_DRAWS, side="right")
        )
        g1 = max(g1, g0 + 1)
        consumed = int(draw_ends[g1 - 1])
        _explode_chunk(
            rng,
            slice(g0, g1),
            g_counts,
            g_cell,
            g_class,
            row_starts,
            cell_keys,
            county_col,
            center_x,
            center_y,
            size_km,
            apothem,
            offers,
            out,
        )
        g0 = g1

    lat, lon = projection.inverse_many(x, y)
    return LocationTable(
        location_id=np.arange(total, dtype=np.int64),
        lat_deg=lat,
        lon_deg=lon,
        cell_key=keys,
        county_id=counties,
        technology=technology,
        max_download_mbps=downlink,
        max_upload_mbps=uplink,
    )


def _explode_chunk(
    rng,
    group_slice,
    g_counts,
    g_cell,
    g_class,
    row_starts,
    cell_keys,
    county_col,
    center_x,
    center_y,
    size_km,
    apothem,
    offers,
    out,
) -> None:
    """Explode groups ``[g0, g1)`` from one batched draw, or rewind."""
    from repro.demand.locations import _ROOT3

    g0, g1 = group_slice.start, group_slice.stop
    c = g_counts[group_slice]
    m = 2 * c + 8  # candidates per axis per group, round one
    state = rng.bit_generator.state
    draw_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(5 * c + 16)]
    )
    draws = rng.random(int(draw_starts[-1]))

    # Gather each group's xs candidates (then ys at a +m offset) into one
    # flat array: gidx maps candidate -> group, "within" is the
    # candidate's index inside its group.
    n_candidates = int(m.sum())
    gidx = np.repeat(np.arange(g1 - g0), m)
    m_starts = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(m)])
    within = np.arange(n_candidates) - np.repeat(m_starts[:-1], m)
    xs_idx = draw_starts[gidx] + within
    # uniform(low, high, n) == low + (high - low) * random(n), bitwise.
    xs = -size_km + (size_km - -size_km) * draws[xs_idx]
    ys = -apothem + (apothem - -apothem) * draws[xs_idx + m[gidx]]
    abs_ys = np.abs(ys)
    inside = (abs_ys <= apothem) & (abs_ys <= _ROOT3 * (size_km - np.abs(xs)))

    filled = np.add.reduceat(inside, m_starts[:-1])
    if _FORCE_REWIND or np.any(filled < c):
        # A group needs a second rejection round (≈1e-6 per group):
        # rewind the generator and replay this chunk scalar-by-scalar.
        rng.bit_generator.state = state
        obs.registry().counter("locations.explode.chunk_rewinds").inc()
        _explode_chunk_reference(
            rng,
            group_slice,
            g_counts,
            g_cell,
            g_class,
            row_starts,
            cell_keys,
            county_col,
            center_x,
            center_y,
            size_km,
            offers,
            out,
        )
        return

    # First-c selection per group: rank candidates by a segmented
    # cumulative sum of the inside mask (1-based among accepted).
    cum_inside = np.cumsum(inside)
    before_group = np.concatenate(
        [np.zeros(1, dtype=np.int64), cum_inside[m_starts[1:-1] - 1]]
    )
    rank = cum_inside - np.repeat(before_group, m)
    take = inside & (rank <= np.repeat(c, m))

    x_out, y_out, keys_out, county_out, tech_out, dl_out, ul_out = out
    rows = slice(int(row_starts[g0]), int(row_starts[g1]))
    cells = g_cell[group_slice]
    x_out[rows] = xs[take] + np.repeat(center_x[cells], c)
    y_out[rows] = ys[take] + np.repeat(center_y[cells], c)
    keys_out[rows] = np.repeat(cell_keys[cells], c)
    county_out[rows] = np.repeat(county_col[cells], c)

    # Offer draws: the c doubles after each group's candidate block,
    # searched through the per-class cdf exactly as Generator.choice does.
    total_c = int(c.sum())
    c_starts = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(c)])
    u_idx = np.repeat(draw_starts[:-1] + 2 * m, c) + (
        np.arange(total_c) - np.repeat(c_starts[:-1], c)
    )
    u = draws[u_idx]
    unserved_cols, underserved_cols = offers
    pick_u = unserved_cols[3].searchsorted(u, side="right")
    pick_d = underserved_cols[3].searchsorted(u, side="right")
    is_unserved = np.repeat(g_class[group_slice], c) == 0
    tech_out[rows] = np.where(
        is_unserved, unserved_cols[0][pick_u], underserved_cols[0][pick_d]
    )
    dl_out[rows] = np.where(
        is_unserved, unserved_cols[1][pick_u], underserved_cols[1][pick_d]
    )
    ul_out[rows] = np.where(
        is_unserved, unserved_cols[2][pick_u], underserved_cols[2][pick_d]
    )


def _explode_chunk_reference(
    rng,
    group_slice,
    g_counts,
    g_cell,
    g_class,
    row_starts,
    cell_keys,
    county_col,
    center_x,
    center_y,
    size_km,
    offers,
    out,
) -> None:
    """Scalar replay of one chunk — the reference per-group loop."""
    from repro.demand.locations import _uniform_hexagon_points

    x_out, y_out, keys_out, county_out, tech_out, dl_out, ul_out = out
    for g in range(group_slice.start, group_slice.stop):
        count = int(g_counts[g])
        cell = int(g_cell[g])
        tech_col, dl_col, ul_col, cdf = offers[int(g_class[g])]
        points = _uniform_hexagon_points(
            rng, count, center_x[cell], center_y[cell], size_km
        )
        choices = cdf.searchsorted(rng.random(count), side="right")
        rows = slice(int(row_starts[g]), int(row_starts[g]) + count)
        x_out[rows] = points[:, 0]
        y_out[rows] = points[:, 1]
        keys_out[rows] = cell_keys[cell]
        county_out[rows] = county_col[cell]
        tech_out[rows] = tech_col[choices]
        dl_out[rows] = dl_col[choices]
        ul_out[rows] = ul_col[choices]


def runlength_unique_counts(
    keys: np.ndarray, unserved: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(unique_keys, unserved_counts, underserved_counts)`` for ``keys``.

    Equivalent to a full-array ``np.unique``/``bincount`` aggregation but
    compresses runs of equal keys first, so the sort touches one entry
    per *run* instead of one per row. Exploded tables arrive grouped by
    cell — ~30 rows per run at national scale — making this the fused
    ``bin_table`` kernel; for arbitrary (unsorted, run-free) keys it
    degrades gracefully to the plain aggregation.
    """
    if len(keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return keys[:0], empty, empty
    run_starts = np.flatnonzero(
        np.concatenate([np.ones(1, dtype=bool), keys[1:] != keys[:-1]])
    )
    run_keys = keys[run_starts]
    run_total = np.diff(
        np.concatenate([run_starts, np.array([len(keys)])])
    )
    run_unserved = np.add.reduceat(unserved.astype(np.int64), run_starts)
    unique_keys, inverse = np.unique(run_keys, return_inverse=True)
    unserved_counts = np.zeros(len(unique_keys), dtype=np.int64)
    underserved_counts = np.zeros(len(unique_keys), dtype=np.int64)
    np.add.at(unserved_counts, inverse, run_unserved)
    np.add.at(underserved_counts, inverse, run_total - run_unserved)
    return unique_keys, unserved_counts, underserved_counts
