"""Adoption dynamics: how take-rate growth re-binds the capacity model.

The paper's analysis is a steady-state "best case" where every
un(der)served location subscribes. In reality adoption ramps; this module
adds the standard Bass diffusion model so the capacity questions can be
asked as a function of time:

* what take rate pushes the peak cell past the acceptable
  oversubscription cap (the moment F1's tension appears), and
* how the required constellation grows along the adoption curve.

Bass model: with innovation coefficient ``p`` and imitation coefficient
``q``, the adopted fraction at time ``t`` (years) is

    F(t) = (1 - exp(-(p+q) t)) / (1 + (q/p) exp(-(p+q) t))

Defaults (p = 0.03, q = 0.4) are classic consumer-durable values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.demand.dataset import DemandDataset
from repro.errors import CapacityModelError


@dataclass(frozen=True)
class BassDiffusion:
    """Bass adoption curve with a ceiling take rate."""

    innovation_p: float = 0.03
    imitation_q: float = 0.4
    #: Long-run fraction of un(der)served locations that ever subscribe.
    ceiling: float = 1.0

    def __post_init__(self) -> None:
        if self.innovation_p <= 0.0 or self.imitation_q < 0.0:
            raise CapacityModelError("Bass coefficients must be positive")
        if not 0.0 < self.ceiling <= 1.0:
            raise CapacityModelError(f"ceiling out of (0, 1]: {self.ceiling!r}")

    def adoption(self, t_years: float) -> float:
        """Adopted fraction at ``t_years`` (0 at t=0, -> ceiling)."""
        if t_years < 0.0:
            raise CapacityModelError(f"negative time: {t_years!r}")
        rate = self.innovation_p + self.imitation_q
        decay = math.exp(-rate * t_years)
        bass = (1.0 - decay) / (1.0 + (self.imitation_q / self.innovation_p) * decay)
        return self.ceiling * bass

    def time_to_adoption(self, fraction: float) -> float:
        """Years until the adopted fraction reaches ``fraction``.

        Inverts the Bass curve by bisection; raises if the fraction
        exceeds the ceiling.
        """
        if not 0.0 <= fraction < self.ceiling:
            raise CapacityModelError(
                f"fraction {fraction!r} unreachable under ceiling {self.ceiling!r}"
            )
        if fraction == 0.0:
            return 0.0
        lo, hi = 0.0, 1.0
        while self.adoption(hi) < fraction:
            hi *= 2.0
            if hi > 1e4:  # pragma: no cover - ceiling check prevents this
                raise CapacityModelError("adoption target unreachable")
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.adoption(mid) < fraction:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0


class GrowthAnalysis:
    """Capacity pressure along the adoption curve."""

    def __init__(
        self,
        dataset: DemandDataset,
        diffusion: BassDiffusion | None = None,
        per_location_mbps: float = 100.0,
        cell_capacity_mbps: float = 17325.0,
    ):
        if per_location_mbps <= 0.0 or cell_capacity_mbps <= 0.0:
            raise CapacityModelError("rates must be positive")
        self.dataset = dataset
        self.diffusion = diffusion or BassDiffusion()
        self.per_location_mbps = per_location_mbps
        self.cell_capacity_mbps = cell_capacity_mbps
        self._counts = dataset.counts()

    def subscribers_at(self, t_years: float) -> np.ndarray:
        """Expected subscribers per cell at time t (fractional)."""
        return self._counts * self.diffusion.adoption(t_years)

    def peak_oversubscription_at(self, t_years: float) -> float:
        """Oversubscription the peak cell needs at time t."""
        peak = float(self.subscribers_at(t_years).max())
        return peak * self.per_location_mbps / self.cell_capacity_mbps

    def cells_over_cap_at(self, t_years: float, acceptable: float = 20.0) -> int:
        """Cells whose subscribers exceed the acceptable-oversub cap."""
        cap = self.cell_capacity_mbps * acceptable / self.per_location_mbps
        return int(np.count_nonzero(self.subscribers_at(t_years) > cap))

    def years_until_peak_cell_binds(self, acceptable: float = 20.0) -> float:
        """Years until the peak cell first exceeds the acceptable cap."""
        peak = float(self._counts.max())
        cap = self.cell_capacity_mbps * acceptable / self.per_location_mbps
        needed_fraction = cap / peak
        if needed_fraction >= self.diffusion.ceiling:
            return math.inf
        return self.diffusion.time_to_adoption(needed_fraction)

    def timeline(self, years: List[float], acceptable: float = 20.0) -> List[Dict]:
        """Adoption/pressure rows for a set of years."""
        rows = []
        for year in years:
            rows.append(
                {
                    "year": year,
                    "adoption": self.diffusion.adoption(year),
                    "subscribers": float(self.subscribers_at(year).sum()),
                    "peak_oversubscription": self.peak_oversubscription_at(year),
                    "cells_over_cap": self.cells_over_cap_at(year, acceptable),
                }
            )
        return rows
