"""The joined demand dataset: service cells x counties x incomes.

:class:`DemandDataset` is the single object every model in :mod:`repro.core`
consumes. It owns the per-cell un(der)served location counts (the paper's
Figure 1 distribution), each cell's latitude (which drives constellation
sizing), and the county join (which drives affordability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.demand.bsl import County, ServiceCell
from repro.errors import DatasetError


@dataclass
class DemandDataset:
    """Service cells with demand, joined to counties with incomes."""

    cells: List[ServiceCell]
    counties: Dict[int, County]
    grid_resolution: int
    description: str = "demand dataset"

    def __post_init__(self) -> None:
        self.validate()
        self._counts = np.array(
            [c.total_locations for c in self.cells], dtype=np.int64
        )
        self._latitudes = np.array(
            [c.latitude_deg for c in self.cells], dtype=float
        )
        self._incomes = np.array(
            [
                self.counties[c.county_id].median_household_income_usd
                for c in self.cells
            ],
            dtype=float,
        )

    # -- invariants -------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`DatasetError` on structural inconsistencies."""
        if not self.cells:
            raise DatasetError("dataset has no cells")
        seen = set()
        for cell in self.cells:
            if cell.cell in seen:
                raise DatasetError(f"duplicate cell {cell.cell.token}")
            seen.add(cell.cell)
            if cell.cell.resolution != self.grid_resolution:
                raise DatasetError(
                    f"cell {cell.cell.token} at resolution "
                    f"{cell.cell.resolution}, dataset at {self.grid_resolution}"
                )
            if cell.county_id not in self.counties:
                raise DatasetError(
                    f"cell {cell.cell.token} references unknown county "
                    f"{cell.county_id}"
                )

    # -- aggregate views ----------------------------------------------------

    @property
    def total_locations(self) -> int:
        """All un(der)served locations in the dataset."""
        return int(self._counts.sum())

    @property
    def occupied_cell_count(self) -> int:
        """Cells containing at least one un(der)served location."""
        return int(np.count_nonzero(self._counts))

    def counts(self) -> np.ndarray:
        """Per-cell location counts (copy), aligned with :attr:`cells`."""
        return self._counts.copy()

    def latitudes(self) -> np.ndarray:
        """Per-cell latitudes in degrees (copy), aligned with :attr:`cells`."""
        return self._latitudes.copy()

    def cell_incomes(self) -> np.ndarray:
        """Per-cell county median income (copy), aligned with :attr:`cells`."""
        return self._incomes.copy()

    def percentile(self, q: float) -> float:
        """Percentile of the per-cell location count distribution."""
        if not 0.0 <= q <= 100.0:
            raise DatasetError(f"percentile out of [0, 100]: {q!r}")
        return float(np.percentile(self._counts, q))

    def max_cell(self) -> ServiceCell:
        """The cell with the most un(der)served locations."""
        return self.cells[int(np.argmax(self._counts))]

    def cells_sorted_by_demand(self) -> List[ServiceCell]:
        """Cells in descending order of location count."""
        order = np.argsort(-self._counts, kind="stable")
        return [self.cells[i] for i in order]

    def location_weighted_income_share_below(self, income_usd: float) -> float:
        """Fraction of locations in counties below ``income_usd``."""
        total = self.total_locations
        if total == 0:
            raise DatasetError("dataset has zero locations")
        below = self._counts[self._incomes < income_usd].sum()
        return float(below) / total

    def locations_in_cells_above(self, threshold_locations: int) -> int:
        """Locations living in cells with more than ``threshold`` locations."""
        mask = self._counts > threshold_locations
        return int(self._counts[mask].sum())

    def excess_locations_above(self, cap_per_cell: int) -> int:
        """Locations beyond a per-cell cap, summed over cells."""
        if cap_per_cell < 0:
            raise DatasetError(f"negative per-cell cap: {cap_per_cell!r}")
        excess = self._counts - cap_per_cell
        return int(excess[excess > 0].sum())

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 content address of the dataset's analytical inputs.

        Covers exactly what the analyses consume — grid resolution and
        the per-cell count/latitude/income arrays — so two datasets
        with the same fingerprint yield the same metrics everywhere.
        Used as the dataset component of sweep-runner cache keys.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(str(self.grid_resolution).encode("ascii"))
        digest.update(self._counts.tobytes())
        digest.update(np.ascontiguousarray(self._latitudes).tobytes())
        digest.update(np.ascontiguousarray(self._incomes).tobytes())
        return digest.hexdigest()

    # -- slicing ------------------------------------------------------------

    def subset_bbox(
        self,
        lat_min: float,
        lat_max: float,
        lon_min: float,
        lon_max: float,
        description: Optional[str] = None,
    ) -> "DemandDataset":
        """Dataset restricted to cells whose centers fall in the box."""
        kept = [
            c
            for c in self.cells
            if lat_min <= c.center.lat_deg <= lat_max
            and lon_min <= c.center.lon_deg <= lon_max
        ]
        if not kept:
            raise DatasetError("bounding box contains no cells")
        county_ids = {c.county_id for c in kept}
        return DemandDataset(
            cells=kept,
            counties={i: self.counties[i] for i in county_ids},
            grid_resolution=self.grid_resolution,
            description=description or f"{self.description} (bbox subset)",
        )

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        return (
            f"{self.description}: {self.total_locations:,} un(der)served "
            f"locations across {len(self.cells):,} cells "
            f"({len(self.counties):,} counties); "
            f"p50={self.percentile(50):.0f}, p90={self.percentile(90):.0f}, "
            f"p99={self.percentile(99):.0f}, "
            f"max={self.max_cell().total_locations} locations/cell"
        )
