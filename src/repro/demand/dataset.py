"""The joined demand dataset: service cells x counties x incomes.

:class:`DemandDataset` is the single object every model in :mod:`repro.core`
consumes. It owns the per-cell un(der)served location counts (the paper's
Figure 1 distribution), each cell's latitude (which drives constellation
sizing), and the county join (which drives affordability).

Storage is columnar-first: the analytical arrays (counts, latitudes,
incomes) plus the full per-cell column set (packed cell keys, centers,
county ids, unserved/underserved splits) are what the dataset actually
holds, and the :class:`~repro.demand.bsl.ServiceCell` list is a *view*
materialized on demand. That makes two things cheap that the object-first
layout could not do:

* :meth:`to_columns` / :meth:`from_columns` round-trip the dataset
  through plain NumPy arrays — the zero-copy handoff the shared-memory
  sweep workers (:mod:`repro.runner.shm`) attach to, skipping the
  multi-second synthetic-map rebuild per spawned worker;
* consumers that only need the arrays (every sweep function, the whole
  :mod:`repro.core` layer) never pay for 150k+ frozen dataclass
  instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.demand.bsl import County, ServiceCell
from repro.errors import DatasetError

#: Column names of :meth:`DemandDataset.to_columns`, in schema order.
DATASET_COLUMNS = (
    "cell_key",
    "center_lat",
    "center_lon",
    "county_id",
    "unserved",
    "underserved",
)

#: County column names of :meth:`DemandDataset.county_columns`.
COUNTY_COLUMNS = ("county_id", "seat_lat", "seat_lon", "income")


class DemandDataset:
    """Service cells with demand, joined to counties with incomes."""

    def __init__(
        self,
        cells: List[ServiceCell],
        counties: Dict[int, County],
        grid_resolution: int,
        description: str = "demand dataset",
    ):
        self.counties = counties
        self.grid_resolution = grid_resolution
        self.description = description
        self._cells: Optional[List[ServiceCell]] = list(cells) if cells else []
        self._columns: Optional[Dict[str, np.ndarray]] = None
        self.validate()
        self._counts = np.array(
            [c.total_locations for c in self._cells], dtype=np.int64
        )
        self._latitudes = np.array(
            [c.latitude_deg for c in self._cells], dtype=float
        )
        self._incomes = np.array(
            [
                self.counties[c.county_id].median_household_income_usd
                for c in self._cells
            ],
            dtype=float,
        )

    # -- columnar construction ----------------------------------------------

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, np.ndarray],
        counties: Dict[int, County],
        grid_resolution: int,
        description: str = "demand dataset",
    ) -> "DemandDataset":
        """Build a dataset straight from :meth:`to_columns` arrays.

        The inverse of :meth:`to_columns`: validation runs vectorized
        over the arrays (same :class:`DatasetError` conditions as the
        cell-list constructor) and no :class:`ServiceCell` objects are
        materialized until something asks for :attr:`cells`. Column
        arrays are adopted as-is (no copy), which is what lets
        shared-memory workers back a dataset with attached buffers.
        """
        self = object.__new__(cls)
        self.counties = counties
        self.grid_resolution = grid_resolution
        self.description = description
        self._cells = None
        missing = [name for name in DATASET_COLUMNS if name not in columns]
        if missing:
            raise DatasetError(f"missing dataset columns {missing}")
        self._columns = {
            "cell_key": np.asarray(columns["cell_key"], dtype=np.uint64),
            "center_lat": np.asarray(columns["center_lat"], dtype=float),
            "center_lon": np.asarray(columns["center_lon"], dtype=float),
            "county_id": np.asarray(columns["county_id"], dtype=np.int64),
            "unserved": np.asarray(columns["unserved"], dtype=np.int64),
            "underserved": np.asarray(columns["underserved"], dtype=np.int64),
        }
        self.validate()
        cols = self._columns
        self._counts = cols["unserved"] + cols["underserved"]
        self._latitudes = cols["center_lat"]
        self._incomes = self._county_income_lookup(cols["county_id"])
        return self

    def to_columns(self) -> Dict[str, np.ndarray]:
        """The per-cell column set (see :data:`DATASET_COLUMNS`).

        Computed from the cell list on first call and cached; a dataset
        built by :meth:`from_columns` returns its adopted arrays.
        """
        if self._columns is None:
            cells = self.cells
            self._columns = {
                "cell_key": np.array(
                    [c.cell.key for c in cells], dtype=np.uint64
                ),
                "center_lat": np.array(
                    [c.center.lat_deg for c in cells], dtype=float
                ),
                "center_lon": np.array(
                    [c.center.lon_deg for c in cells], dtype=float
                ),
                "county_id": np.array(
                    [c.county_id for c in cells], dtype=np.int64
                ),
                "unserved": np.array(
                    [c.unserved_locations for c in cells], dtype=np.int64
                ),
                "underserved": np.array(
                    [c.underserved_locations for c in cells], dtype=np.int64
                ),
            }
        return self._columns

    def county_columns(self) -> Dict[str, np.ndarray]:
        """County attributes as arrays (see :data:`COUNTY_COLUMNS`)."""
        ids = sorted(self.counties)
        return {
            "county_id": np.array(ids, dtype=np.int64),
            "seat_lat": np.array(
                [self.counties[i].seat.lat_deg for i in ids], dtype=float
            ),
            "seat_lon": np.array(
                [self.counties[i].seat.lon_deg for i in ids], dtype=float
            ),
            "income": np.array(
                [
                    self.counties[i].median_household_income_usd
                    for i in ids
                ],
                dtype=float,
            ),
        }

    def _county_income_lookup(self, county_ids: np.ndarray) -> np.ndarray:
        """Vectorized county-id -> median income, aligned to the input."""
        known = np.array(sorted(self.counties), dtype=np.int64)
        incomes = np.array(
            [self.counties[int(i)].median_household_income_usd for i in known],
            dtype=float,
        )
        positions = np.searchsorted(known, county_ids)
        return incomes[positions]

    # -- the cell-object view ------------------------------------------------

    @property
    def cells(self) -> List[ServiceCell]:
        """Per-cell :class:`ServiceCell` objects, materialized on demand."""
        if self._cells is None:
            self._cells = [
                self._cell_at(i) for i in range(self._n_cells())
            ]
        return self._cells

    def _n_cells(self) -> int:
        if self._cells is not None:
            return len(self._cells)
        return len(self._columns["cell_key"])

    def _cell_at(self, index: int) -> ServiceCell:
        """Materialize one cell from columns without building the list."""
        if self._cells is not None:
            return self._cells[index]
        from repro.geo.coords import LatLon
        from repro.geo.hexgrid import CellId

        cols = self._columns
        return ServiceCell(
            cell=CellId.from_key(int(cols["cell_key"][index])),
            center=LatLon(
                float(cols["center_lat"][index]),
                float(cols["center_lon"][index]),
            ),
            county_id=int(cols["county_id"][index]),
            unserved_locations=int(cols["unserved"][index]),
            underserved_locations=int(cols["underserved"][index]),
        )

    # -- invariants -------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`DatasetError` on structural inconsistencies."""
        if self._cells is not None:
            self._validate_cells()
        else:
            self._validate_columns()

    def _validate_cells(self) -> None:
        if not self._cells:
            raise DatasetError("dataset has no cells")
        seen = set()
        for cell in self._cells:
            if cell.cell in seen:
                raise DatasetError(f"duplicate cell {cell.cell.token}")
            seen.add(cell.cell)
            if cell.cell.resolution != self.grid_resolution:
                raise DatasetError(
                    f"cell {cell.cell.token} at resolution "
                    f"{cell.cell.resolution}, dataset at {self.grid_resolution}"
                )
            if cell.county_id not in self.counties:
                raise DatasetError(
                    f"cell {cell.cell.token} references unknown county "
                    f"{cell.county_id}"
                )

    def _validate_columns(self) -> None:
        """Vectorized validation: same errors as :meth:`_validate_cells`."""
        from repro.geo.hexgrid import CellId, unpack_cell_keys

        cols = self._columns
        lengths = {len(cols[name]) for name in DATASET_COLUMNS}
        if len(lengths) > 1:
            raise DatasetError(
                f"dataset columns have unequal lengths: {sorted(lengths)}"
            )
        keys = cols["cell_key"]
        if keys.size == 0:
            raise DatasetError("dataset has no cells")
        unique_keys, counts = np.unique(keys, return_counts=True)
        if (counts > 1).any():
            duplicate = int(unique_keys[counts > 1][0])
            raise DatasetError(
                f"duplicate cell {CellId.from_key(duplicate).token}"
            )
        resolutions, _, _ = unpack_cell_keys(keys)
        off_grid = resolutions != self.grid_resolution
        if off_grid.any():
            index = int(np.flatnonzero(off_grid)[0])
            bad = CellId.from_key(int(keys[index]))
            raise DatasetError(
                f"cell {bad.token} at resolution "
                f"{bad.resolution}, dataset at {self.grid_resolution}"
            )
        known = np.array(sorted(self.counties), dtype=np.int64)
        county_ids = cols["county_id"]
        if known.size:
            positions = np.clip(
                np.searchsorted(known, county_ids), 0, known.size - 1
            )
            unknown = known[positions] != county_ids
        else:
            unknown = np.ones(county_ids.shape, dtype=bool)
        if unknown.any():
            index = int(np.flatnonzero(unknown)[0])
            bad = CellId.from_key(int(keys[index]))
            raise DatasetError(
                f"cell {bad.token} references unknown county "
                f"{int(county_ids[index])}"
            )
        if (cols["unserved"] < 0).any() or (cols["underserved"] < 0).any():
            negative = np.flatnonzero(
                (cols["unserved"] < 0) | (cols["underserved"] < 0)
            )[0]
            bad = CellId.from_key(int(keys[int(negative)]))
            raise DatasetError(f"cell {bad.token}: negative location count")

    # -- aggregate views ----------------------------------------------------

    @property
    def total_locations(self) -> int:
        """All un(der)served locations in the dataset."""
        return int(self._counts.sum())

    @property
    def occupied_cell_count(self) -> int:
        """Cells containing at least one un(der)served location."""
        return int(np.count_nonzero(self._counts))

    def counts(self) -> np.ndarray:
        """Per-cell location counts (copy), aligned with :attr:`cells`."""
        return self._counts.copy()

    def latitudes(self) -> np.ndarray:
        """Per-cell latitudes in degrees (copy), aligned with :attr:`cells`."""
        return self._latitudes.copy()

    def cell_incomes(self) -> np.ndarray:
        """Per-cell county median income (copy), aligned with :attr:`cells`."""
        return self._incomes.copy()

    def percentile(self, q: float) -> float:
        """Percentile of the per-cell location count distribution."""
        if not 0.0 <= q <= 100.0:
            raise DatasetError(f"percentile out of [0, 100]: {q!r}")
        return float(np.percentile(self._counts, q))

    def max_cell(self) -> ServiceCell:
        """The cell with the most un(der)served locations."""
        return self._cell_at(int(np.argmax(self._counts)))

    def cells_sorted_by_demand(self) -> List[ServiceCell]:
        """Cells in descending order of location count."""
        order = np.argsort(-self._counts, kind="stable")
        return [self._cell_at(int(i)) for i in order]

    def location_weighted_income_share_below(self, income_usd: float) -> float:
        """Fraction of locations in counties below ``income_usd``."""
        total = self.total_locations
        if total == 0:
            raise DatasetError("dataset has zero locations")
        below = self._counts[self._incomes < income_usd].sum()
        return float(below) / total

    def locations_in_cells_above(self, threshold_locations: int) -> int:
        """Locations living in cells with more than ``threshold`` locations."""
        mask = self._counts > threshold_locations
        return int(self._counts[mask].sum())

    def excess_locations_above(self, cap_per_cell: int) -> int:
        """Locations beyond a per-cell cap, summed over cells."""
        if cap_per_cell < 0:
            raise DatasetError(f"negative per-cell cap: {cap_per_cell!r}")
        excess = self._counts - cap_per_cell
        return int(excess[excess > 0].sum())

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 content address of the dataset's analytical inputs.

        Covers exactly what the analyses consume — grid resolution and
        the per-cell count/latitude/income arrays — so two datasets
        with the same fingerprint yield the same metrics everywhere.
        Used as the dataset component of sweep-runner cache keys.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(str(self.grid_resolution).encode("ascii"))
        digest.update(np.ascontiguousarray(self._counts).tobytes())
        digest.update(np.ascontiguousarray(self._latitudes).tobytes())
        digest.update(np.ascontiguousarray(self._incomes).tobytes())
        return digest.hexdigest()

    # -- slicing ------------------------------------------------------------

    def subset_bbox(
        self,
        lat_min: float,
        lat_max: float,
        lon_min: float,
        lon_max: float,
        description: Optional[str] = None,
    ) -> "DemandDataset":
        """Dataset restricted to cells whose centers fall in the box."""
        kept = [
            c
            for c in self.cells
            if lat_min <= c.center.lat_deg <= lat_max
            and lon_min <= c.center.lon_deg <= lon_max
        ]
        if not kept:
            raise DatasetError("bounding box contains no cells")
        county_ids = {c.county_id for c in kept}
        return DemandDataset(
            cells=kept,
            counties={i: self.counties[i] for i in county_ids},
            grid_resolution=self.grid_resolution,
            description=description or f"{self.description} (bbox subset)",
        )

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        return (
            f"{self.description}: {self.total_locations:,} un(der)served "
            f"locations across {self._n_cells():,} cells "
            f"({len(self.counties):,} counties); "
            f"p50={self.percentile(50):.0f}, p90={self.percentile(90):.0f}, "
            f"p99={self.percentile(99):.0f}, "
            f"max={self.max_cell().total_locations} locations/cell"
        )
