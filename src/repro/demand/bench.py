"""Location-pipeline benchmark: columnar fast path vs scalar reference.

Measures the BDC-scale location layer at a configurable scale (default:
the calibrated 4.66 M-location national dataset):

* **explode** — :func:`~repro.demand.locations.explode_cells_table` vs
  the record-at-a-time :func:`~repro.demand.locations.explode_cells`,
* **bin** — :func:`~repro.demand.locations.bin_table` vs
  :func:`~repro.demand.locations.bin_locations`,
* **CSV I/O** — the chunked column writer/reader vs the record I/O, on a
  bounded row slice so the I/O stage doesn't dominate the run,
* **NPZ** — columnar persistence round-trip (fast path only; the scalar
  reference has no binary format).

Every stage also checks that the two paths produce identical output
(tables equal column-for-column, bins equal, CSV bytes equal), so the
benchmark doubles as an end-to-end differential test.
``run_locations_bench`` returns a JSON-serializable dict (written to
``BENCH_locations.json`` by ``repro-divide bench-locations``) so every
commit can extend a machine-readable performance trajectory.
"""

from __future__ import annotations

import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro import obs
from repro.demand.locations import (
    LocationTable,
    bin_locations,
    bin_table,
    explode_cells,
    explode_cells_table,
    read_locations_csv,
    read_table_csv,
    write_locations_csv,
    write_table_csv,
)
from repro.sim.bench import BenchTimings, _best_of, _git_commit

#: Region used by ``--quick`` runs (the same Appalachian subset the
#: simulation bench smoke-tests with).
QUICK_BBOX = (37.0, 38.5, -83.5, -81.0)

#: Rows benched through the CSV/NPZ stages at full scale. I/O cost is
#: linear in rows; a bounded slice keeps the bench wall time dominated by
#: the explode/bin stages the fast path is actually about.
IO_ROW_CAP = 500_000


def _table_slice(table: LocationTable, stop: int) -> LocationTable:
    return LocationTable(
        location_id=table.location_id[:stop],
        lat_deg=table.lat_deg[:stop],
        lon_deg=table.lon_deg[:stop],
        cell_key=table.cell_key[:stop],
        county_id=table.county_id[:stop],
        technology=table.technology[:stop],
        max_download_mbps=table.max_download_mbps[:stop],
        max_upload_mbps=table.max_upload_mbps[:stop],
    )


def run_locations_bench(
    quick: bool = False,
    repeat: int = 1,
    seed: int = 0,
    dataset=None,
) -> Dict:
    """Run the full location-pipeline benchmark; returns the results dict.

    ``quick`` shrinks the scenario to a regional cell subset for CI smoke
    runs; the default measures the acceptance configuration (the national
    4.66 M-location map). Every timing is best-of-``repeat``.
    """
    if dataset is None:
        from repro.demand.synthetic import generate_national_map

        dataset = generate_national_map()
    if quick:
        dataset = dataset.subset_bbox(*QUICK_BBOX, "bench quick region")
    resolution = dataset.grid_resolution

    results: Dict[str, object] = {}

    def fast_explode() -> None:
        results["table"] = explode_cells_table(dataset, seed=seed)

    def reference_explode() -> None:
        results["records"] = explode_cells(dataset, seed=seed)

    with obs.span("bench.locations.explode"):
        explode = BenchTimings.measure(repeat, fast_explode, reference_explode)
    table: LocationTable = results["table"]
    records = results["records"]
    explode_identical = table.equals(LocationTable.from_records(records))

    def fast_bin() -> None:
        results["fast_bins"] = bin_table(table, resolution)

    def reference_bin() -> None:
        results["reference_bins"] = bin_locations(records, resolution)

    with obs.span("bench.locations.bin"):
        binning = BenchTimings.measure(repeat, fast_bin, reference_bin)
    bin_identical = results["fast_bins"] == results["reference_bins"]

    io_rows = min(len(table), IO_ROW_CAP)
    io_table = _table_slice(table, io_rows)
    io_records = records[:io_rows]
    with obs.span("bench.locations.io", rows=io_rows), \
            tempfile.TemporaryDirectory() as tmp:
        fast_csv = Path(tmp) / "fast.csv"
        reference_csv = Path(tmp) / "reference.csv"
        csv_write = BenchTimings.measure(
            repeat,
            lambda: write_table_csv(io_table, fast_csv),
            lambda: write_locations_csv(io_records, reference_csv),
        )
        csv_bytes_identical = (
            fast_csv.read_bytes() == reference_csv.read_bytes()
        )

        def fast_read() -> None:
            results["fast_loaded"] = read_table_csv(fast_csv)

        def reference_read() -> None:
            results["reference_loaded"] = read_locations_csv(reference_csv)

        csv_read = BenchTimings.measure(repeat, fast_read, reference_read)
        csv_read_identical = results["fast_loaded"].equals(
            LocationTable.from_records(results["reference_loaded"])
        )

        npz_target = Path(tmp) / "table.npz"
        npz_write_s = _best_of(repeat, lambda: io_table.to_npz(npz_target))

        def npz_read() -> None:
            results["npz_loaded"] = LocationTable.from_npz(npz_target)

        npz_read_s = _best_of(repeat, npz_read)
        npz_identical = results["npz_loaded"].equals(io_table)

    all_identical = (
        explode_identical
        and bin_identical
        and csv_bytes_identical
        and csv_read_identical
        and npz_identical
    )

    import numpy

    return {
        "schema": "repro-bench-locations/1",
        "commit": _git_commit(),
        "config": {
            "quick": quick,
            "seed": seed,
            "repeat": repeat,
            "cells": len(dataset.cells),
            "locations": dataset.total_locations,
            "grid_resolution": resolution,
            "io_rows": io_rows,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
        },
        "explode": {**explode.as_dict(), "identical": explode_identical},
        "bin": {
            **binning.as_dict(),
            "identical": bin_identical,
            "cells_out": len(results["fast_bins"]),
        },
        "csv_write": {
            **csv_write.as_dict(),
            "bytes_identical": csv_bytes_identical,
        },
        "csv_read": {**csv_read.as_dict(), "identical": csv_read_identical},
        "npz": {
            "write_s": npz_write_s,
            "read_s": npz_read_s,
            "round_trip_identical": npz_identical,
        },
        "headline_speedup": (explode.reference_s + binning.reference_s)
        / (explode.fast_s + binning.fast_s),
        "all_identical": all_identical,
    }


def format_locations_bench_summary(results: Dict) -> str:
    """Human-readable one-screen summary of a locations bench dict."""
    config = results["config"]
    lines = [
        "locations bench: {locations} locations x {cells} cells "
        "(io rows: {io_rows}{quick})".format(
            locations=config["locations"],
            cells=config["cells"],
            io_rows=config["io_rows"],
            quick=", quick" if config["quick"] else "",
        )
    ]
    for stage in ("explode", "bin", "csv_write", "csv_read"):
        lines.append(
            "  {stage}: {fast_s:.3f}s fast vs {reference_s:.3f}s reference "
            "({speedup:.1f}x)".format(stage=stage, **results[stage])
        )
    lines.append(
        "  npz: {write_s:.3f}s write, {read_s:.3f}s read".format(
            **results["npz"]
        )
    )
    lines.append(
        "  headline explode+bin speedup: %.1fx (all outputs identical: %s)"
        % (results["headline_speedup"], results["all_identical"])
    )
    return "\n".join(lines)
