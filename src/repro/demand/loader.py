"""CSV round-trip for demand datasets.

Persists a :class:`~repro.demand.dataset.DemandDataset` as two CSV files
shaped like the paper's preprocessed inputs — a per-cell file (the
H3-binned FCC map) and a per-county file (the census income join) — and
reads them back. Useful for sharing a generated dataset or inspecting it
with external tools.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.demand.bsl import County, ServiceCell
from repro.demand.dataset import DemandDataset
from repro.errors import DatasetError
from repro.geo.coords import LatLon
from repro.geo.hexgrid import CellId

_CELL_HEADERS = [
    "cell_token",
    "lat_deg",
    "lon_deg",
    "county_id",
    "unserved_locations",
    "underserved_locations",
]
_COUNTY_HEADERS = ["county_id", "name", "lat_deg", "lon_deg", "median_income_usd"]


def write_dataset(
    dataset: DemandDataset, cells_path: Union[str, Path], counties_path: Union[str, Path]
) -> None:
    """Write the dataset to a cells CSV and a counties CSV."""
    cells_file = Path(cells_path)
    counties_file = Path(counties_path)
    cells_file.parent.mkdir(parents=True, exist_ok=True)
    counties_file.parent.mkdir(parents=True, exist_ok=True)
    with cells_file.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CELL_HEADERS)
        for cell in dataset.cells:
            writer.writerow(
                [
                    cell.cell.token,
                    f"{cell.center.lat_deg:.6f}",
                    f"{cell.center.lon_deg:.6f}",
                    cell.county_id,
                    cell.unserved_locations,
                    cell.underserved_locations,
                ]
            )
    with counties_file.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COUNTY_HEADERS)
        for county in dataset.counties.values():
            writer.writerow(
                [
                    county.county_id,
                    county.name,
                    f"{county.seat.lat_deg:.6f}",
                    f"{county.seat.lon_deg:.6f}",
                    f"{county.median_household_income_usd:.2f}",
                ]
            )


def read_dataset(
    cells_path: Union[str, Path],
    counties_path: Union[str, Path],
    description: str = "loaded demand dataset",
) -> DemandDataset:
    """Read a dataset previously written by :func:`write_dataset`."""
    counties: Dict[int, County] = {}
    for row in _read_rows(counties_path, _COUNTY_HEADERS):
        county = County(
            county_id=int(row["county_id"]),
            name=row["name"],
            seat=LatLon(float(row["lat_deg"]), float(row["lon_deg"])),
            median_household_income_usd=float(row["median_income_usd"]),
        )
        if county.county_id in counties:
            raise DatasetError(f"duplicate county id {county.county_id}")
        counties[county.county_id] = county

    cells: List[ServiceCell] = []
    resolution = None
    for row in _read_rows(cells_path, _CELL_HEADERS):
        cell_id = CellId.from_token(row["cell_token"])
        if resolution is None:
            resolution = cell_id.resolution
        cells.append(
            ServiceCell(
                cell=cell_id,
                center=LatLon(float(row["lat_deg"]), float(row["lon_deg"])),
                county_id=int(row["county_id"]),
                unserved_locations=int(row["unserved_locations"]),
                underserved_locations=int(row["underserved_locations"]),
            )
        )
    if resolution is None:
        raise DatasetError(f"no cells in {cells_path}")
    return DemandDataset(
        cells=cells,
        counties=counties,
        grid_resolution=resolution,
        description=description,
    )


def _read_rows(path: Union[str, Path], expected_headers: List[str]):
    """Yield dict rows, validating the header line."""
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"no such file: {file_path}")
    with file_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != expected_headers:
            raise DatasetError(
                f"{file_path}: headers {reader.fieldnames} != "
                f"expected {expected_headers}"
            )
        yield from reader
