"""Seeded synthetic national broadband map, calibrated to the paper.

The generator reproduces the *statistics the paper publishes* about its
FCC-map-derived dataset, by construction:

* per-cell distribution quantiles (Fig 1): p90 = 552, p99 = 1437
  locations per cell, and the Fig 2 color-scale anchor (36 % of cells at
  or below ~62 locations);
* the five densest cells planted explicitly — 5998 (the paper's max),
  4400, 4200, 4000, 3830 — so that locations in cells above the 20:1
  oversubscription cap total 22,428 and the excess beyond the cap totals
  5,128, exactly matching F1 (the four sub-peak values are chosen to
  satisfy the paper's two published aggregates; the paper does not list
  them individually);
* a national total of ~4.66 M un(der)served locations (Fig 3/F4);
* the peak cell placed at ~37 N in Appalachia, the latitude implied by
  back-solving Table 2's constellation sizes through the Walker-density
  enhancement factor.

Everything is driven by one integer seed; two runs with the same config
produce identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.demand.bsl import County, ServiceCell
from repro.demand.census import IncomeModel
from repro.demand.counties import (
    CONUS_COUNTY_COUNT,
    assign_to_nearest_seat,
    county_name,
    sample_county_seats,
)
from repro.demand.dataset import DemandDataset
from repro.demand.quantiles import QuantileCurve
from repro.errors import CalibrationError
from repro.geo.coords import LatLon
from repro.geo.hexgrid import CellId, HexGrid, STARLINK_CELL_RESOLUTION
from repro.geo.polygon import Polygon
from repro.geo.us_boundary import conus_polygon

#: Per-cell location-count quantile anchors (probability, locations/cell).
#: (0.36, 62) comes from Fig 2's bottom color anchor; (0.90, 552) and
#: (0.99, 1437) from Fig 1; the curve is capped below the 20:1 cap of 3460
#: because the five densest cells are planted separately.
DEFAULT_CELL_COUNT_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (0.0, 1.0),
    (0.36, 62.0),
    (0.50, 125.0),
    (0.75, 300.0),
    (0.90, 552.0),
    (0.99, 1437.0),
    (0.999, 2600.0),
    (1.0, 3400.0),
)

#: Planted top-5 cells: (locations, preferred latitude, preferred longitude).
#: Sum = 22,428 and sum of (n - 3460) = 5,128, matching F1's aggregates.
DEFAULT_PLANTED_PEAKS: Tuple[Tuple[int, float, float], ...] = (
    (5998, 37.00, -82.50),
    (4400, 36.60, -83.70),
    (4200, 36.45, -84.90),
    (4000, 36.30, -88.20),
    (3830, 36.55, -81.20),
)


@dataclass(frozen=True)
class SyntheticMapConfig:
    """Configuration of the synthetic national broadband map."""

    seed: int = 20250706
    resolution: int = STARLINK_CELL_RESOLUTION
    total_locations: int = 4_660_000
    cell_count_anchors: Tuple[Tuple[float, float], ...] = DEFAULT_CELL_COUNT_ANCHORS
    planted_peaks: Tuple[Tuple[int, float, float], ...] = DEFAULT_PLANTED_PEAKS
    county_count: int = CONUS_COUNTY_COUNT
    income_model: IncomeModel = field(default_factory=IncomeModel)
    #: Fraction of un(der)served locations that are fully unserved (vs
    #: underserved); the capacity model treats both identically.
    unserved_fraction: float = 0.57
    #: Study-region boundary vertices; None means CONUS. See
    #: :mod:`repro.demand.regions` for prebuilt regions and
    #: :meth:`for_region` for the convenient constructor.
    region_outline: Optional[Tuple[Tuple[float, float], ...]] = None
    description: Optional[str] = None

    def __post_init__(self) -> None:
        if self.total_locations <= 0:
            raise CalibrationError("total_locations must be positive")
        if not 0.0 <= self.unserved_fraction <= 1.0:
            raise CalibrationError(
                f"unserved_fraction out of [0, 1]: {self.unserved_fraction!r}"
            )
        planted_sum = sum(n for n, _, _ in self.planted_peaks)
        if planted_sum >= self.total_locations:
            raise CalibrationError("planted peaks exceed the national total")

    @classmethod
    def for_region(cls, region, seed: int = 20250706, **overrides):
        """Config for a :class:`~repro.demand.regions.StudyRegion`."""
        return cls(
            seed=seed,
            total_locations=region.total_locations,
            planted_peaks=region.planted_peaks,
            county_count=region.county_count,
            region_outline=region.outline,
            description=region.name,
            **overrides,
        )

    @classmethod
    def at_resolution(
        cls, resolution: int, seed: int = 20250706, **overrides
    ):
        """The national config rescaled to another H3 grid resolution.

        The paper's calibration anchors are *per-cell* location counts at
        resolution 5; at a finer grid each cell covers proportionally
        less area, so the quantile anchors and the planted peak counts
        are divided by the mean-hex-area ratio (≈ 7× per resolution
        step). The national total is unchanged — the same 4.66 M
        locations spread over ~7× more cells at resolution 6.
        """
        from repro.geo.hexgrid import H3_MEAN_HEX_AREA_KM2

        if not 0 <= resolution < len(H3_MEAN_HEX_AREA_KM2):
            raise CalibrationError(
                f"unsupported grid resolution: {resolution!r}"
            )
        factor = (
            H3_MEAN_HEX_AREA_KM2[STARLINK_CELL_RESOLUTION]
            / H3_MEAN_HEX_AREA_KM2[resolution]
        )
        anchors = tuple(
            (p, max(1.0, count / factor))
            for p, count in DEFAULT_CELL_COUNT_ANCHORS
        )
        peaks = tuple(
            (max(1, round(n / factor)), lat, lon)
            for n, lat, lon in DEFAULT_PLANTED_PEAKS
        )
        return cls(
            seed=seed,
            resolution=resolution,
            cell_count_anchors=anchors,
            planted_peaks=peaks,
            description=f"synthetic national map @ H3 res {resolution}",
            **overrides,
        )


def generate_national_map(
    config: Optional[SyntheticMapConfig] = None,
) -> DemandDataset:
    """Generate the calibrated synthetic national map.

    Deterministic in ``config.seed``. Takes a few seconds at national
    scale; regional studies can generate once and
    :meth:`~repro.demand.dataset.DemandDataset.subset_bbox` afterwards.
    """
    config = config or SyntheticMapConfig()
    rng = np.random.default_rng(config.seed)
    grid = HexGrid(config.resolution)
    if config.region_outline is not None:
        boundary = Polygon(
            [LatLon(lat, lon) for lat, lon in config.region_outline]
        )
    else:
        boundary = conus_polygon()

    all_cells = grid.cells_covering(boundary)
    if not all_cells:
        raise CalibrationError("study-region polygon covers no cells")
    center_lats, center_lons = grid.centers_many(
        np.array([c.key for c in all_cells], dtype=np.uint64)
    )
    centers = [
        LatLon(float(lat), float(lon))
        for lat, lon in zip(center_lats, center_lons)
    ]

    curve = QuantileCurve(config.cell_count_anchors)
    planted_total = sum(n for n, _, _ in config.planted_peaks)
    bulk_total = config.total_locations - planted_total
    mean = curve.mean()
    n_occupied = int(round(bulk_total / mean))
    if n_occupied + len(config.planted_peaks) > len(all_cells):
        raise CalibrationError(
            f"need {n_occupied} occupied cells but region only has "
            f"{len(all_cells)}"
        )

    # Plant the peak cells at their preferred locations first.
    peak_indices = _nearest_cell_indices(
        centers, [(lat, lon) for _, lat, lon in config.planted_peaks]
    )
    counts_by_index: Dict[int, int] = {}
    for (locations, _, _), index in zip(config.planted_peaks, peak_indices):
        if index in counts_by_index:
            raise CalibrationError("two planted peaks map to the same cell")
        counts_by_index[index] = locations

    # Choose the bulk occupied cells uniformly among the rest.
    remaining = np.array(
        [i for i in range(len(all_cells)) if i not in counts_by_index]
    )
    chosen = rng.choice(remaining, size=n_occupied, replace=False)

    # Deterministic quantile sample nails the distribution shape; the
    # planted peaks are treated as the top order statistics of the same
    # population (positions run over n_occupied + n_peaks), so combined
    # percentiles like Fig 1's p99 land on their published values. Shuffle
    # so that count magnitude is spatially unstructured (peaks excepted).
    population = n_occupied + len(config.planted_peaks)
    positions = (np.arange(n_occupied) + 0.5) / population
    values = np.asarray(curve.value(positions), dtype=float)
    counts = np.maximum(1, np.rint(values).astype(np.int64))
    # The planted peaks must remain the densest cells: cap the bulk sample
    # below the smallest planted value (regions with modest peaks simply
    # get a truncated tail).
    bulk_cap = int(curve.value(1.0))
    if config.planted_peaks:
        max_planted = max(n for n, _, _ in config.planted_peaks)
        bulk_cap = max(1, min(bulk_cap, max_planted - 1))
    counts = np.minimum(counts, bulk_cap)
    counts = _adjust_total(counts, bulk_total, cap=bulk_cap)
    rng.shuffle(counts)
    for index, count in zip(chosen, counts):
        counts_by_index[int(index)] = int(count)

    # Counties: seats, Voronoi assignment of occupied cells, incomes.
    seats = sample_county_seats(boundary, config.county_count, rng)
    occupied_indices = sorted(counts_by_index)
    occupied_centers = [centers[i] for i in occupied_indices]
    county_of_cell = assign_to_nearest_seat(occupied_centers, seats)

    county_loads: Dict[int, int] = {i: 0 for i in range(len(seats))}
    for cell_index, county_index in zip(occupied_indices, county_of_cell):
        county_loads[int(county_index)] += counts_by_index[cell_index]
    incomes = config.income_model.assign_incomes(county_loads, rng)

    counties = {
        i: County(
            county_id=i,
            name=county_name(i),
            seat=seats[i],
            median_household_income_usd=incomes[i],
        )
        for i in range(len(seats))
    }

    cells = []
    for cell_index, county_index in zip(occupied_indices, county_of_cell):
        total = counts_by_index[cell_index]
        unserved = int(round(total * config.unserved_fraction))
        cells.append(
            ServiceCell(
                cell=all_cells[cell_index],
                center=centers[cell_index],
                county_id=int(county_index),
                unserved_locations=unserved,
                underserved_locations=total - unserved,
            )
        )

    label = config.description or "synthetic national broadband map"
    dataset = DemandDataset(
        cells=cells,
        counties=counties,
        grid_resolution=config.resolution,
        description=f"{label} (seed={config.seed})",
    )
    _check_calibration(dataset, config)
    return dataset


def _nearest_cell_indices(
    centers: Sequence[LatLon], targets: Sequence[Tuple[float, float]]
) -> List[int]:
    """Index of the center nearest each (lat, lon) target."""
    lats = np.array([c.lat_deg for c in centers])
    lons = np.array([c.lon_deg for c in centers])
    indices = []
    for lat, lon in targets:
        # Equirectangular metric is fine for nearest-neighbour at this scale.
        d2 = (lats - lat) ** 2 + ((lons - lon) * np.cos(np.radians(lat))) ** 2
        indices.append(int(np.argmin(d2)))
    return indices


def _adjust_total(counts: np.ndarray, target: int, cap: int) -> np.ndarray:
    """Nudge integer counts so they sum to ``target`` without passing ``cap``.

    Rounding the quantile sample leaves a residual of a few thousand
    locations; spread it one unit at a time over cells nearest the median
    (where cell density is highest, so tail quantiles like p90/p99 stay at
    their published targets), never crossing ``cap`` or dropping below 1.
    """
    counts = counts.copy()
    residual = int(target - counts.sum())
    if residual == 0:
        return counts
    step = 1 if residual > 0 else -1
    median = np.median(counts)
    order = np.argsort(np.abs(counts - median), kind="stable")
    i = 0
    guard = 0
    while residual != 0:
        guard += 1
        if guard > 100 * len(counts):
            raise CalibrationError(
                f"could not adjust totals: residual {residual} remains"
            )
        index = order[i % len(order)]
        candidate = counts[index] + step
        if 1 <= candidate <= cap:
            counts[index] = candidate
            residual -= step
        i += 1
    return counts


def _check_calibration(dataset: DemandDataset, config: SyntheticMapConfig) -> None:
    """Assert the generated dataset hit its published-statistic targets."""
    if dataset.total_locations != config.total_locations:
        raise CalibrationError(
            f"total locations {dataset.total_locations} != target "
            f"{config.total_locations}"
        )
    expected_max = max(n for n, _, _ in config.planted_peaks)
    actual_max = dataset.max_cell().total_locations
    if actual_max != expected_max:
        raise CalibrationError(
            f"max cell {actual_max} != planted peak {expected_max}"
        )
