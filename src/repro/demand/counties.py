"""Synthetic county partition of the study region.

The affordability analysis joins each service cell to a county (the census
unit whose median income the paper assigns to all locations inside it).
This module fabricates a county layer: ~3,100 county seats scattered over
CONUS (the real count is 3,108 county-equivalents in the lower 48) and a
nearest-seat (Voronoi) assignment of cells to counties, computed in the
equal-area projected plane.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import DatasetError
from repro.geo.coords import LatLon
from repro.geo.polygon import Polygon
from repro.geo.projection import EqualAreaProjection

#: County-equivalents in the contiguous United States.
CONUS_COUNTY_COUNT = 3108


def sample_county_seats(
    polygon: Polygon,
    count: int,
    rng: np.random.Generator,
    max_attempts_factor: int = 200,
) -> List[LatLon]:
    """Rejection-sample ``count`` county-seat points inside ``polygon``.

    Candidates are drawn uniformly by area — uniform in (lon, sin(lat)) —
    in whole batches and filtered with one vectorized
    :meth:`~repro.geo.polygon.Polygon.contains_many` call per batch,
    instead of one scalar containment test per draw.
    """
    if count <= 0:
        raise DatasetError(f"county count must be positive: {count!r}")
    lat_min, lat_max, lon_min, lon_max = polygon.bounds()
    projection = EqualAreaProjection()
    _, y_min = projection.forward(LatLon(lat_min, 0.0))
    _, y_max = projection.forward(LatLon(lat_max, 0.0))
    seats: List[LatLon] = []
    attempts = 0
    max_attempts = count * max_attempts_factor
    while len(seats) < count:
        if attempts >= max_attempts:
            raise DatasetError(
                f"could not place {count} county seats after {attempts} draws"
            )
        # Overdraw modestly; the acceptance rate is land-area / bbox-area
        # (~2x for CONUS), so a couple of rounds usually finish the job.
        batch = min(
            max(2 * (count - len(seats)), 64), max_attempts - attempts
        )
        attempts += batch
        lons = rng.uniform(lon_min, lon_max, size=batch)
        ys = rng.uniform(y_min, y_max, size=batch)
        sin_lat = np.clip(ys / projection.radius_km, -1.0, 1.0)
        lats = np.degrees(np.arcsin(sin_lat))
        accepted = polygon.contains_many(lats, lons)
        for lat, lon in zip(lats[accepted], lons[accepted]):
            if len(seats) == count:
                break
            seats.append(LatLon(float(lat), float(lon)))
    return seats


def assign_to_nearest_seat(
    points: Sequence[LatLon], seats: Sequence[LatLon]
) -> np.ndarray:
    """Index of the nearest seat for each point (projected-plane metric)."""
    if not seats:
        raise DatasetError("no county seats to assign to")
    projection = EqualAreaProjection()
    seat_xy = np.column_stack(
        projection.forward_many(
            np.array([s.lat_deg for s in seats], dtype=float),
            np.array([s.lon_deg for s in seats], dtype=float),
        )
    )
    if len(points) == 0:
        return np.zeros(0, dtype=int)
    point_xy = np.column_stack(
        projection.forward_many(
            np.array([p.lat_deg for p in points], dtype=float),
            np.array([p.lon_deg for p in points], dtype=float),
        )
    )
    tree = cKDTree(seat_xy)
    _, indices = tree.query(point_xy)
    return np.asarray(indices, dtype=int)


def county_name(index: int) -> str:
    """Deterministic synthetic county name for seat ``index``."""
    return f"County {index:04d}"
