"""Per-location records: the FCC Broadband Data Collection's granularity.

The library's canonical demand representation is per-cell counts (all the
paper's math consumes), but the FCC's raw data is one row per broadband
serviceable location (BSL) with per-provider technology and speed claims.
This module bridges the two:

* :func:`explode_cells` scatters a dataset's counts into individual
  location points inside each cell's hexagon (seeded, deterministic) with
  BDC-style attributes — unserved locations get either no offer or a slow
  legacy one, underserved locations an offer below the 100/20 bar;
* :func:`bin_locations` re-aggregates points into cells on a grid — the
  inverse, used both for round-trip validation and for ingesting
  location-level data from elsewhere;
* CSV read/write in a BDC-like schema.

The record-at-a-time functions above are the **scalar reference path**:
one frozen :class:`LocationRecord` per location, fine for regional
studies but too slow (and memory-hungry) for the national 4.66 M-location
scale. The **columnar fast path** mirrors each of them on
:class:`LocationTable`, a structure-of-arrays with one NumPy column per
attribute:

* :func:`explode_cells_table` / :func:`bin_table` are outcome-identical
  to :func:`explode_cells` / :func:`bin_locations` (they replay the same
  per-cell RNG stream, so even the sampled positions match bit-for-bit);
* :func:`write_table_csv` / :func:`read_table_csv` stream the same
  BDC-like CSV schema in chunks (byte-compatible with the record I/O);
* :meth:`LocationTable.to_npz` / :meth:`LocationTable.from_npz` persist
  the columns directly for fast reload.

``benchmarks/bench_locations.py`` and ``repro-divide bench-locations``
measure both paths; see docs/PERFORMANCE.md for current numbers.
"""

from __future__ import annotations

import csv
import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.demand.dataset import DemandDataset
from repro.errors import DatasetError
from repro.geo.coords import LatLon
from repro.geo.hexgrid import CellId, HexGrid, pack_cell_keys
from repro.geo.projection import EqualAreaProjection
from repro.spectrum.regulatory import (
    RELIABLE_BROADBAND_DOWNLINK_MBPS,
    RELIABLE_BROADBAND_UPLINK_MBPS,
    is_reliable_broadband,
)


class TechnologyCode(enum.IntEnum):
    """FCC BDC technology codes (subset)."""

    NONE = 0
    COPPER_DSL = 10
    CABLE = 40
    FIBER = 50
    FIXED_WIRELESS_UNLICENSED = 70
    GEO_SATELLITE = 60


@dataclass(frozen=True)
class LocationRecord:
    """One broadband serviceable location with its best reported offer."""

    location_id: int
    position: LatLon
    cell: CellId
    county_id: int
    technology: TechnologyCode
    max_download_mbps: float
    max_upload_mbps: float

    def __post_init__(self) -> None:
        if self.max_download_mbps < 0.0 or self.max_upload_mbps < 0.0:
            raise DatasetError(
                f"location {self.location_id}: negative speeds"
            )

    @property
    def is_served(self) -> bool:
        """Whether the best offer meets the reliable-broadband bar."""
        return is_reliable_broadband(self.max_download_mbps, self.max_upload_mbps)

    @property
    def is_unserved(self) -> bool:
        """No offer at all, or one below 25/3 (the FCC 'unserved' bar)."""
        return self.max_download_mbps < 25.0 or self.max_upload_mbps < 3.0


#: Offer profiles drawn for unserved locations: (tech, dl, ul, weight).
_UNSERVED_OFFERS: Tuple[Tuple[TechnologyCode, float, float, float], ...] = (
    (TechnologyCode.NONE, 0.0, 0.0, 0.45),
    (TechnologyCode.COPPER_DSL, 10.0, 1.0, 0.35),
    (TechnologyCode.GEO_SATELLITE, 20.0, 3.0, 0.20),
)

#: Offer profiles for underserved locations (above 25/3, below 100/20).
_UNDERSERVED_OFFERS: Tuple[Tuple[TechnologyCode, float, float, float], ...] = (
    (TechnologyCode.COPPER_DSL, 50.0, 5.0, 0.40),
    (TechnologyCode.FIXED_WIRELESS_UNLICENSED, 80.0, 10.0, 0.40),
    (TechnologyCode.CABLE, 75.0, 10.0, 0.20),
)


def _offer_columns(
    offers: Tuple[Tuple[TechnologyCode, float, float, float], ...]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Offer profiles as (technology, downlink, uplink, cdf) lookup columns.

    The cdf replicates ``Generator.choice(len(offers), p=weights)``
    internals (cumsum normalized by its last entry, searched with
    ``side="right"``), so drawing via ``cdf.searchsorted(rng.random(n))``
    consumes the same stream and returns the same indices as ``choice`` —
    without per-call weight validation overhead.
    """
    cdf = np.cumsum(np.asarray([w for _, _, _, w in offers], dtype=float))
    cdf /= cdf[-1]
    return (
        np.array([int(t) for t, _, _, _ in offers], dtype=np.int16),
        np.array([dl for _, dl, _, _ in offers], dtype=float),
        np.array([ul for _, _, ul, _ in offers], dtype=float),
        cdf,
    )


_UNSERVED_COLUMNS = _offer_columns(_UNSERVED_OFFERS)
_UNDERSERVED_COLUMNS = _offer_columns(_UNDERSERVED_OFFERS)

#: Valid FCC technology codes, for vectorized validation.
_VALID_TECHNOLOGY_CODES = np.array(
    sorted(int(t) for t in TechnologyCode), dtype=np.int16
)


def explode_cells(
    dataset: DemandDataset, seed: int = 0
) -> List[LocationRecord]:
    """Scatter each cell's counts into individual location records.

    Points are placed uniformly inside each cell's hexagon in the
    projected plane (so uniformly by area on the sphere); offers are drawn
    from BDC-like profiles. Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    grid = HexGrid(dataset.grid_resolution)
    projection = EqualAreaProjection()
    records: List[LocationRecord] = []
    location_id = 0
    for cell in dataset.cells:
        cx, cy = projection.forward(grid.center(cell.cell))
        for count, offers in (
            (cell.unserved_locations, _UNSERVED_OFFERS),
            (cell.underserved_locations, _UNDERSERVED_OFFERS),
        ):
            if count == 0:
                continue
            points = _uniform_hexagon_points(
                rng, count, cx, cy, grid.hex_size_km
            )
            choices = rng.choice(
                len(offers), size=count, p=[w for _, _, _, w in offers]
            )
            for (px, py), choice in zip(points, choices):
                technology, downlink, uplink, _ = offers[int(choice)]
                records.append(
                    LocationRecord(
                        location_id=location_id,
                        position=projection.inverse(px, py),
                        cell=cell.cell,
                        county_id=cell.county_id,
                        technology=technology,
                        max_download_mbps=downlink,
                        max_upload_mbps=uplink,
                    )
                )
                location_id += 1
    return records


_ROOT3 = float(np.sqrt(3.0))


def _uniform_hexagon_points(
    rng: np.random.Generator, count: int, cx: float, cy: float, size_km: float
) -> np.ndarray:
    """``count`` points uniform in a flat-top hexagon centered at (cx, cy)."""
    points = np.empty((count, 2))
    filled = 0
    apothem = size_km * _ROOT3 / 2.0
    while filled < count:
        need = count - filled
        xs = rng.uniform(-size_km, size_km, size=2 * need + 8)
        ys = rng.uniform(-apothem, apothem, size=2 * need + 8)
        # Flat-top hexagon: flat edges at |y| = apothem, sloped edges run
        # from (s, 0) to (s/2, apothem), i.e. |y| <= sqrt(3) * (s - |x|).
        abs_ys = np.abs(ys)
        inside = (abs_ys <= apothem) & (
            abs_ys <= _ROOT3 * (size_km - np.abs(xs))
        )
        good = np.flatnonzero(inside)[:need]
        points[filled : filled + good.size, 0] = xs[good] + cx
        points[filled : filled + good.size, 1] = ys[good] + cy
        filled += good.size
    return points


def bin_locations(
    records: Iterable[LocationRecord], resolution: int
) -> Dict[CellId, Tuple[int, int]]:
    """Aggregate records into (unserved, underserved) counts per cell.

    Cells are re-derived from each record's position on a grid of the
    given resolution; 'unserved' follows the FCC 25/3 bar, locations at or
    above 100/20 are dropped (served).
    """
    grid = HexGrid(resolution)
    counts: Dict[CellId, List[int]] = {}
    for record in records:
        if record.is_served:
            continue
        cell = grid.cell_for(record.position)
        bucket = counts.setdefault(cell, [0, 0])
        if record.is_unserved:
            bucket[0] += 1
        else:
            bucket[1] += 1
    return {cell: (u, d) for cell, (u, d) in counts.items()}


_LOCATION_HEADERS = [
    "location_id",
    "lat_deg",
    "lon_deg",
    "cell_token",
    "county_id",
    "technology",
    "max_download_mbps",
    "max_upload_mbps",
]


def write_locations_csv(
    records: Iterable[LocationRecord], path: Union[str, Path]
) -> Path:
    """Write records in a BDC-like CSV schema."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_LOCATION_HEADERS)
        for record in records:
            writer.writerow(
                [
                    record.location_id,
                    f"{record.position.lat_deg:.6f}",
                    f"{record.position.lon_deg:.6f}",
                    record.cell.token,
                    record.county_id,
                    int(record.technology),
                    f"{record.max_download_mbps:.1f}",
                    f"{record.max_upload_mbps:.1f}",
                ]
            )
    return target


def read_locations_csv(path: Union[str, Path]) -> List[LocationRecord]:
    """Read records written by :func:`write_locations_csv`."""
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"no such file: {file_path}")
    records = []
    with file_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != _LOCATION_HEADERS:
            raise DatasetError(
                f"{file_path}: unexpected headers {reader.fieldnames}"
            )
        for row in reader:
            try:
                technology = TechnologyCode(int(row["technology"]))
            except ValueError as exc:
                raise DatasetError(
                    f"{file_path}: location {row['location_id']}: "
                    f"unknown technology code {row['technology']!r}"
                ) from exc
            records.append(
                LocationRecord(
                    location_id=int(row["location_id"]),
                    position=LatLon(
                        float(row["lat_deg"]), float(row["lon_deg"])
                    ),
                    cell=CellId.from_token(row["cell_token"]),
                    county_id=int(row["county_id"]),
                    technology=technology,
                    max_download_mbps=float(row["max_download_mbps"]),
                    max_upload_mbps=float(row["max_upload_mbps"]),
                )
            )
    return records


# ---------------------------------------------------------------------------
# Columnar fast path
# ---------------------------------------------------------------------------

#: NPZ column names, in schema order (mirrors ``_LOCATION_HEADERS``).
_TABLE_COLUMNS = (
    "location_id",
    "lat_deg",
    "lon_deg",
    "cell_key",
    "county_id",
    "technology",
    "max_download_mbps",
    "max_upload_mbps",
)


@dataclass(eq=False)
class LocationTable:
    """Structure-of-arrays over broadband serviceable locations.

    One NumPy column per :class:`LocationRecord` attribute; cells are the
    packed uint64 keys of :attr:`~repro.geo.hexgrid.CellId.key`. Converts
    losslessly to and from record lists, so the columnar pipeline and the
    scalar reference interoperate freely.
    """

    location_id: np.ndarray
    lat_deg: np.ndarray
    lon_deg: np.ndarray
    cell_key: np.ndarray
    county_id: np.ndarray
    technology: np.ndarray
    max_download_mbps: np.ndarray
    max_upload_mbps: np.ndarray

    def __post_init__(self) -> None:
        self.location_id = np.asarray(self.location_id, dtype=np.int64)
        self.lat_deg = np.asarray(self.lat_deg, dtype=float)
        self.lon_deg = np.asarray(self.lon_deg, dtype=float)
        self.cell_key = np.asarray(self.cell_key, dtype=np.uint64)
        self.county_id = np.asarray(self.county_id, dtype=np.int64)
        self.technology = np.asarray(self.technology, dtype=np.int16)
        self.max_download_mbps = np.asarray(
            self.max_download_mbps, dtype=float
        )
        self.max_upload_mbps = np.asarray(self.max_upload_mbps, dtype=float)
        lengths = {len(self._column(name)) for name in _TABLE_COLUMNS}
        if len(lengths) > 1:
            raise DatasetError(
                f"location table columns have unequal lengths: {sorted(lengths)}"
            )
        if len(self) and (
            (self.max_download_mbps < 0.0).any()
            or (self.max_upload_mbps < 0.0).any()
        ):
            negative = np.flatnonzero(
                (self.max_download_mbps < 0.0) | (self.max_upload_mbps < 0.0)
            )[0]
            raise DatasetError(
                f"location {int(self.location_id[negative])}: negative speeds"
            )
        if len(self):
            unknown = ~np.isin(self.technology, _VALID_TECHNOLOGY_CODES)
            if unknown.any():
                bad = int(self.technology[unknown][0])
                raise DatasetError(f"unknown technology code {bad!r}")

    def _column(self, name: str) -> np.ndarray:
        return getattr(self, name)

    def __len__(self) -> int:
        return len(self.location_id)

    # -- masks --------------------------------------------------------------

    def is_served(self) -> np.ndarray:
        """Vectorized :attr:`LocationRecord.is_served` (100/20 bar)."""
        return (
            self.max_download_mbps >= RELIABLE_BROADBAND_DOWNLINK_MBPS
        ) & (self.max_upload_mbps >= RELIABLE_BROADBAND_UPLINK_MBPS)

    def is_unserved(self) -> np.ndarray:
        """Vectorized :attr:`LocationRecord.is_unserved` (FCC 25/3 bar)."""
        return (self.max_download_mbps < 25.0) | (self.max_upload_mbps < 3.0)

    # -- record interop ------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[LocationRecord]) -> "LocationTable":
        """Columnarize a record list (lossless)."""
        records = list(records)
        return cls(
            location_id=np.array(
                [r.location_id for r in records], dtype=np.int64
            ),
            lat_deg=np.array(
                [r.position.lat_deg for r in records], dtype=float
            ),
            lon_deg=np.array(
                [r.position.lon_deg for r in records], dtype=float
            ),
            cell_key=np.array([r.cell.key for r in records], dtype=np.uint64),
            county_id=np.array([r.county_id for r in records], dtype=np.int64),
            technology=np.array(
                [int(r.technology) for r in records], dtype=np.int16
            ),
            max_download_mbps=np.array(
                [r.max_download_mbps for r in records], dtype=float
            ),
            max_upload_mbps=np.array(
                [r.max_upload_mbps for r in records], dtype=float
            ),
        )

    def to_records(self) -> List[LocationRecord]:
        """Materialize one :class:`LocationRecord` per row (lossless)."""
        cells: Dict[int, CellId] = {}
        records = []
        for i in range(len(self)):
            key = int(self.cell_key[i])
            cell = cells.get(key)
            if cell is None:
                cell = cells[key] = CellId.from_key(key)
            records.append(
                LocationRecord(
                    location_id=int(self.location_id[i]),
                    position=LatLon(
                        float(self.lat_deg[i]), float(self.lon_deg[i])
                    ),
                    cell=cell,
                    county_id=int(self.county_id[i]),
                    technology=TechnologyCode(int(self.technology[i])),
                    max_download_mbps=float(self.max_download_mbps[i]),
                    max_upload_mbps=float(self.max_upload_mbps[i]),
                )
            )
        return records

    def equals(self, other: "LocationTable") -> bool:
        """Exact column-wise equality with another table."""
        return all(
            np.array_equal(self._column(name), other._column(name))
            for name in _TABLE_COLUMNS
        )

    # -- resource management -------------------------------------------------

    def close(self) -> None:
        """Release memory-mapped column file handles, if any.

        Tables loaded with ``from_npz(..., mmap_mode="r")`` keep the NPZ
        file open through each column's underlying :class:`mmap.mmap`;
        long-lived processes (the serving layer) must release them on
        shutdown or the table file stays pinned until process exit. All
        columns are replaced with empty arrays first, so later access
        *through the table* fails loudly on a length check. Views a
        caller copied out beforehand do not keep the mapping alive —
        NumPy memmap arrays hold no buffer export on the mmap, so the
        pages really are unmapped; don't read such views after close.
        Idempotent; a no-op for in-memory tables.
        """
        mmaps = []
        for name in _TABLE_COLUMNS:
            column = self._column(name)
            # __post_init__'s asarray wraps each memmap in a plain
            # ndarray view, so the mapping hides behind .base.
            node, buffer = column, None
            while node is not None and buffer is None:
                buffer = getattr(node, "_mmap", None)
                node = getattr(node, "base", None)
            if buffer is not None and not any(
                buffer is seen for seen in mmaps
            ):
                mmaps.append(buffer)
            setattr(self, name, np.empty(0, dtype=column.dtype))
            # Drop the loop's own references so the mapping's buffer
            # export count reaches zero before the close below.
            del column, node
        for buffer in mmaps:
            try:
                buffer.close()
            except BufferError:
                # Something exported the mmap's buffer directly (a
                # caller-made memoryview); the mapping is freed when
                # that export is released instead.
                pass

    def __enter__(self) -> "LocationTable":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- NPZ persistence -----------------------------------------------------

    def to_npz(self, path: Union[str, Path]) -> Path:
        """Persist all columns to an uncompressed ``.npz`` archive."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with obs.span("locations.npz.write", rows=len(self)):
            np.savez(
                target,
                **{name: self._column(name) for name in _TABLE_COLUMNS},
            )
        # np.savez appends .npz when the name lacks it; report the real path.
        return target if target.suffix == ".npz" else Path(f"{target}.npz")

    @classmethod
    def from_npz(
        cls, path: Union[str, Path], mmap_mode: Optional[str] = None
    ) -> "LocationTable":
        """Load a table written by :meth:`to_npz`.

        With ``mmap_mode`` (``"r"`` is the only supported mode) the
        columns are memory-mapped straight out of the uncompressed NPZ
        archive instead of being read into RAM: ``np.savez`` stores each
        column as a contiguous ``ZIP_STORED`` ``.npy`` member, so every
        column becomes a read-only :class:`numpy.memmap` window onto the
        file. A national 4.66 M-location table opens in milliseconds and
        pages in lazily — this is what lets the serving layer
        (:mod:`repro.serve`) hold the full table "in memory" without
        paying for it up front. Zero-length columns (an empty table)
        cannot be mmapped and fall back to ordinary empty arrays.
        """
        file_path = Path(path)
        if not file_path.exists():
            raise DatasetError(f"no such file: {file_path}")
        if mmap_mode is not None:
            if mmap_mode != "r":
                raise DatasetError(
                    f"unsupported mmap mode {mmap_mode!r} (only 'r')"
                )
            with obs.span("locations.npz.mmap"):
                return cls(**_mmap_npz_columns(file_path))
        with obs.span("locations.npz.read"), np.load(file_path) as archive:
            missing = [
                name for name in _TABLE_COLUMNS if name not in archive.files
            ]
            if missing:
                raise DatasetError(
                    f"{file_path}: missing location table columns {missing}"
                )
            return cls(**{name: archive[name] for name in _TABLE_COLUMNS})


def _mmap_npz_columns(file_path: Path) -> Dict[str, np.ndarray]:
    """Memory-map every table column out of an uncompressed NPZ archive.

    ``np.load`` ignores ``mmap_mode`` for ``.npz`` files, so this walks
    the zip directory by hand: each member ``np.savez`` wrote is a
    ``ZIP_STORED`` (uncompressed) ``.npy`` file at a known offset, whose
    array payload can be mapped directly with :class:`numpy.memmap`.
    Zero-length columns fall back to ordinary empty arrays (an empty
    file region cannot be mmapped).
    """
    import zipfile

    columns: Dict[str, np.ndarray] = {}
    try:
        archive = zipfile.ZipFile(file_path)
    except zipfile.BadZipFile as exc:
        raise DatasetError(f"{file_path}: not an NPZ archive") from exc
    with archive:
        members = {name: f"{name}.npy" for name in _TABLE_COLUMNS}
        missing = [
            name
            for name, member in members.items()
            if member not in archive.namelist()
        ]
        if missing:
            raise DatasetError(
                f"{file_path}: missing location table columns {missing}"
            )
        with file_path.open("rb") as handle:
            for name, member in members.items():
                info = archive.getinfo(member)
                if info.compress_type != zipfile.ZIP_STORED:
                    raise DatasetError(
                        f"{file_path}: column {name!r} is compressed; "
                        "only uncompressed archives (np.savez) can be "
                        "memory-mapped"
                    )
                # Local file header: 30 fixed bytes, then the file name
                # and the extra field, then the stored .npy payload.
                handle.seek(info.header_offset)
                local_header = handle.read(30)
                if local_header[:4] != b"PK\x03\x04":
                    raise DatasetError(
                        f"{file_path}: corrupt zip member {member!r}"
                    )
                name_len = int.from_bytes(local_header[26:28], "little")
                extra_len = int.from_bytes(local_header[28:30], "little")
                handle.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    header = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    header = np.lib.format.read_array_header_2_0(handle)
                else:
                    raise DatasetError(
                        f"{file_path}: column {name!r} uses unsupported "
                        f"npy format version {version}"
                    )
                shape, fortran_order, dtype = header
                if fortran_order or len(shape) != 1:
                    raise DatasetError(
                        f"{file_path}: column {name!r} is not a flat "
                        "C-ordered array"
                    )
                if shape[0] == 0:
                    columns[name] = np.empty(shape, dtype=dtype)
                else:
                    columns[name] = np.memmap(
                        file_path,
                        dtype=dtype,
                        mode="r",
                        offset=handle.tell(),
                        shape=shape,
                    )
    return columns


def explode_cells_table(
    dataset: DemandDataset, seed: int = 0
) -> LocationTable:
    """Columnar :func:`explode_cells`: same records, one table, far faster.

    Replays the reference implementation's RNG stream exactly — the same
    rejection-sampled positions and offer draws in the same order — via
    the fused batched-RNG kernel in :mod:`repro.demand.fused`, which
    draws the raw doubles for thousands of (cell, class) groups per call
    instead of three tiny ``Generator`` dispatches per group.
    ``explode_cells_table(d, s)`` is bit-identical to
    ``LocationTable.from_records(explode_cells(d, s))`` (and to the
    retained per-group loop ``_explode_cells_table``, the differential
    reference).
    """
    from repro.demand.fused import fused_explode_columns

    span = obs.span(
        "locations.explode", cells=dataset._n_cells(), seed=seed
    )
    with span:
        return fused_explode_columns(dataset, seed, span)


def _explode_cells_table(
    dataset: DemandDataset, seed: int, span
) -> LocationTable:
    """Per-group reference loop for :func:`explode_cells_table`.

    Kept as the differential baseline the fused kernel is proven
    against (tests/demand/test_fused.py) and as the rewind target for
    chunks whose rejection sampling needs a second round.
    """
    rng = np.random.default_rng(seed)
    grid = HexGrid(dataset.grid_resolution)
    projection = EqualAreaProjection()
    size_km = grid.hex_size_km
    cell_keys = np.array([c.cell.key for c in dataset.cells], dtype=np.uint64)
    center_lat, center_lon = grid.centers_many(cell_keys)
    center_x, center_y = projection.forward_many(center_lat, center_lon)
    total = sum(
        c.unserved_locations + c.underserved_locations for c in dataset.cells
    )
    span.set(rows=total)
    registry = obs.registry()
    registry.counter("locations.explode.rows").inc(total)
    registry.counter("locations.explode.cells").inc(len(dataset.cells))
    x = np.empty(total)
    y = np.empty(total)
    keys = np.empty(total, dtype=np.uint64)
    counties = np.empty(total, dtype=np.int64)
    technology = np.empty(total, dtype=np.int16)
    downlink = np.empty(total)
    uplink = np.empty(total)
    offset = 0
    for index, cell in enumerate(dataset.cells):
        cx = center_x[index]
        cy = center_y[index]
        for count, (tech_col, dl_col, ul_col, cdf) in (
            (cell.unserved_locations, _UNSERVED_COLUMNS),
            (cell.underserved_locations, _UNDERSERVED_COLUMNS),
        ):
            if count == 0:
                continue
            points = _uniform_hexagon_points(rng, count, cx, cy, size_km)
            choices = cdf.searchsorted(rng.random(count), side="right")
            span = slice(offset, offset + count)
            x[span] = points[:, 0]
            y[span] = points[:, 1]
            keys[span] = cell_keys[index]
            counties[span] = cell.county_id
            technology[span] = tech_col[choices]
            downlink[span] = dl_col[choices]
            uplink[span] = ul_col[choices]
            offset += count
    lat, lon = projection.inverse_many(x, y)
    return LocationTable(
        location_id=np.arange(total, dtype=np.int64),
        lat_deg=lat,
        lon_deg=lon,
        cell_key=keys,
        county_id=counties,
        technology=technology,
        max_download_mbps=downlink,
        max_upload_mbps=uplink,
    )


def bin_table(
    table: LocationTable, resolution: int
) -> Dict[CellId, Tuple[int, int]]:
    """Columnar :func:`bin_locations`: identical counts, run-compressed.

    Cells are re-derived from positions with
    :meth:`~repro.geo.hexgrid.HexGrid.cell_for_many` (bit-identical to
    the scalar ``cell_for``), then aggregated by
    :func:`~repro.demand.fused.runlength_unique_counts`: runs of equal
    keys collapse first, so the unique sort touches one entry per run —
    for exploded tables (grouped by cell) that is the cell count, not
    the location count.
    """
    from repro.demand.fused import runlength_unique_counts

    with obs.span("locations.bin", rows=len(table)) as span:
        grid = HexGrid(resolution)
        keep = ~table.is_served()
        keys = grid.cell_for_many(table.lat_deg[keep], table.lon_deg[keep])
        unserved = table.is_unserved()[keep]
        unique_keys, unserved_counts, underserved_counts = (
            runlength_unique_counts(keys, unserved)
        )
        span.set(cells_out=len(unique_keys))
        registry = obs.registry()
        registry.counter("locations.bin.rows").inc(len(table))
        registry.counter("locations.bin.cells_out").inc(len(unique_keys))
        return {
            CellId.from_key(int(key)): (int(u), int(d))
            for key, u, d in zip(
                unique_keys, unserved_counts, underserved_counts
            )
        }


def write_table_csv(
    table: LocationTable,
    path: Union[str, Path],
    chunk_size: int = 200_000,
) -> Path:
    """Chunked CSV writer, byte-identical to :func:`write_locations_csv`.

    Streams ``chunk_size`` rows at a time (bounded memory at national
    scale) and formats from columns — no intermediate record objects.
    """
    if chunk_size <= 0:
        raise DatasetError(f"chunk size must be positive: {chunk_size!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with obs.span("locations.csv.write", rows=len(table)):
        obs.registry().counter("locations.csv.rows_written").inc(len(table))
        _write_table_csv_body(table, target, chunk_size)
    return target


def _write_table_csv_body(
    table: LocationTable, target: Path, chunk_size: int
) -> None:
    """The :func:`write_table_csv` body, under its telemetry span."""
    unique_keys, inverse = np.unique(table.cell_key, return_inverse=True)
    tokens = np.array([f"{int(key):015x}" for key in unique_keys])
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_LOCATION_HEADERS)
        for start in range(0, len(table), chunk_size):
            stop = start + chunk_size
            rows = zip(
                table.location_id[start:stop].tolist(),
                table.lat_deg[start:stop].tolist(),
                table.lon_deg[start:stop].tolist(),
                tokens[inverse[start:stop]].tolist(),
                table.county_id[start:stop].tolist(),
                table.technology[start:stop].tolist(),
                table.max_download_mbps[start:stop].tolist(),
                table.max_upload_mbps[start:stop].tolist(),
            )
            writer.writerows(
                (
                    location_id,
                    "%.6f" % lat,
                    "%.6f" % lon,
                    token,
                    county_id,
                    technology,
                    "%.1f" % downlink,
                    "%.1f" % uplink,
                )
                for (
                    location_id,
                    lat,
                    lon,
                    token,
                    county_id,
                    technology,
                    downlink,
                    uplink,
                ) in rows
            )


def _csv_chunks(
    reader: Iterator[List[str]], chunk_size: int
) -> Iterator[List[List[str]]]:
    """Yield raw CSV rows in lists of at most ``chunk_size``."""
    chunk: List[List[str]] = []
    for row in reader:
        chunk.append(row)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def read_table_csv(
    path: Union[str, Path], chunk_size: int = 500_000
) -> LocationTable:
    """Chunked CSV reader for the BDC-like schema, returning a table.

    Accepts exactly the files :func:`write_locations_csv` /
    :func:`write_table_csv` produce; parses ``chunk_size`` rows at a time
    into columns so the peak overhead is one chunk of strings, not a full
    record list. Unknown technology codes raise :class:`DatasetError`.
    """
    if chunk_size <= 0:
        raise DatasetError(f"chunk size must be positive: {chunk_size!r}")
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"no such file: {file_path}")
    with obs.span("locations.csv.read") as span:
        table = _read_table_csv_body(file_path, chunk_size)
        span.set(rows=len(table))
        obs.registry().counter("locations.csv.rows_read").inc(len(table))
        return table


def _read_table_csv_body(file_path: Path, chunk_size: int) -> LocationTable:
    """The :func:`read_table_csv` body, under its telemetry span."""
    parts: List[Tuple[np.ndarray, ...]] = []
    with file_path.open(newline="") as handle:
        reader = csv.reader(handle)
        headers = next(reader, None)
        if headers != _LOCATION_HEADERS:
            raise DatasetError(
                f"{file_path}: unexpected headers {headers}"
            )
        for chunk in _csv_chunks(reader, chunk_size):
            columns = list(zip(*chunk))
            tokens, token_inverse = np.unique(
                np.array(columns[3]), return_inverse=True
            )
            try:
                keys = np.array(
                    [int(token, 16) for token in tokens], dtype=np.uint64
                )
            except ValueError as exc:
                raise DatasetError(
                    f"{file_path}: malformed cell token"
                ) from exc
            technology = np.array(columns[5], dtype=np.int16)
            unknown = ~np.isin(technology, _VALID_TECHNOLOGY_CODES)
            if unknown.any():
                bad_row = chunk[int(np.flatnonzero(unknown)[0])]
                raise DatasetError(
                    f"{file_path}: location {bad_row[0]}: unknown "
                    f"technology code {bad_row[5]!r}"
                )
            parts.append(
                (
                    np.array(columns[0], dtype=np.int64),
                    np.array(columns[1], dtype=float),
                    np.array(columns[2], dtype=float),
                    keys[token_inverse],
                    np.array(columns[4], dtype=np.int64),
                    technology,
                    np.array(columns[6], dtype=float),
                    np.array(columns[7], dtype=float),
                )
            )
    if not parts:
        empty = np.zeros(0)
        return LocationTable(empty, empty, empty, empty, empty, empty, empty, empty)
    return LocationTable(
        *(np.concatenate(column) for column in zip(*parts))
    )
