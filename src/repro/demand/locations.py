"""Per-location records: the FCC Broadband Data Collection's granularity.

The library's canonical demand representation is per-cell counts (all the
paper's math consumes), but the FCC's raw data is one row per broadband
serviceable location (BSL) with per-provider technology and speed claims.
This module bridges the two:

* :func:`explode_cells` scatters a dataset's counts into individual
  location points inside each cell's hexagon (seeded, deterministic) with
  BDC-style attributes — unserved locations get either no offer or a slow
  legacy one, underserved locations an offer below the 100/20 bar;
* :func:`bin_locations` re-aggregates points into cells on a grid — the
  inverse, used both for round-trip validation and for ingesting
  location-level data from elsewhere;
* CSV read/write in a BDC-like schema.

Intended for regional studies; exploding all 4.66 M national locations
works but costs memory.
"""

from __future__ import annotations

import csv
import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.demand.dataset import DemandDataset
from repro.errors import DatasetError
from repro.geo.coords import LatLon
from repro.geo.hexgrid import CellId, HexGrid
from repro.geo.projection import EqualAreaProjection
from repro.spectrum.regulatory import is_reliable_broadband


class TechnologyCode(enum.IntEnum):
    """FCC BDC technology codes (subset)."""

    NONE = 0
    COPPER_DSL = 10
    CABLE = 40
    FIBER = 50
    FIXED_WIRELESS_UNLICENSED = 70
    GEO_SATELLITE = 60


@dataclass(frozen=True)
class LocationRecord:
    """One broadband serviceable location with its best reported offer."""

    location_id: int
    position: LatLon
    cell: CellId
    county_id: int
    technology: TechnologyCode
    max_download_mbps: float
    max_upload_mbps: float

    def __post_init__(self) -> None:
        if self.max_download_mbps < 0.0 or self.max_upload_mbps < 0.0:
            raise DatasetError(
                f"location {self.location_id}: negative speeds"
            )

    @property
    def is_served(self) -> bool:
        """Whether the best offer meets the reliable-broadband bar."""
        return is_reliable_broadband(self.max_download_mbps, self.max_upload_mbps)

    @property
    def is_unserved(self) -> bool:
        """No offer at all, or one below 25/3 (the FCC 'unserved' bar)."""
        return self.max_download_mbps < 25.0 or self.max_upload_mbps < 3.0


#: Offer profiles drawn for unserved locations: (tech, dl, ul, weight).
_UNSERVED_OFFERS: Tuple[Tuple[TechnologyCode, float, float, float], ...] = (
    (TechnologyCode.NONE, 0.0, 0.0, 0.45),
    (TechnologyCode.COPPER_DSL, 10.0, 1.0, 0.35),
    (TechnologyCode.GEO_SATELLITE, 20.0, 3.0, 0.20),
)

#: Offer profiles for underserved locations (above 25/3, below 100/20).
_UNDERSERVED_OFFERS: Tuple[Tuple[TechnologyCode, float, float, float], ...] = (
    (TechnologyCode.COPPER_DSL, 50.0, 5.0, 0.40),
    (TechnologyCode.FIXED_WIRELESS_UNLICENSED, 80.0, 10.0, 0.40),
    (TechnologyCode.CABLE, 75.0, 10.0, 0.20),
)


def explode_cells(
    dataset: DemandDataset, seed: int = 0
) -> List[LocationRecord]:
    """Scatter each cell's counts into individual location records.

    Points are placed uniformly inside each cell's hexagon in the
    projected plane (so uniformly by area on the sphere); offers are drawn
    from BDC-like profiles. Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    grid = HexGrid(dataset.grid_resolution)
    projection = EqualAreaProjection()
    records: List[LocationRecord] = []
    location_id = 0
    for cell in dataset.cells:
        cx, cy = projection.forward(grid.center(cell.cell))
        for count, offers in (
            (cell.unserved_locations, _UNSERVED_OFFERS),
            (cell.underserved_locations, _UNDERSERVED_OFFERS),
        ):
            if count == 0:
                continue
            points = _uniform_hexagon_points(
                rng, count, cx, cy, grid.hex_size_km
            )
            choices = rng.choice(
                len(offers), size=count, p=[w for _, _, _, w in offers]
            )
            for (px, py), choice in zip(points, choices):
                technology, downlink, uplink, _ = offers[int(choice)]
                records.append(
                    LocationRecord(
                        location_id=location_id,
                        position=projection.inverse(px, py),
                        cell=cell.cell,
                        county_id=cell.county_id,
                        technology=technology,
                        max_download_mbps=downlink,
                        max_upload_mbps=uplink,
                    )
                )
                location_id += 1
    return records


def _uniform_hexagon_points(
    rng: np.random.Generator, count: int, cx: float, cy: float, size_km: float
) -> np.ndarray:
    """``count`` points uniform in a flat-top hexagon centered at (cx, cy)."""
    points = np.empty((count, 2))
    filled = 0
    apothem = size_km * np.sqrt(3.0) / 2.0
    while filled < count:
        need = count - filled
        xs = rng.uniform(-size_km, size_km, size=2 * need + 8)
        ys = rng.uniform(-apothem, apothem, size=2 * need + 8)
        # Flat-top hexagon: flat edges at |y| = apothem, sloped edges run
        # from (s, 0) to (s/2, apothem), i.e. |y| <= sqrt(3) * (s - |x|).
        inside = (np.abs(ys) <= apothem) & (
            np.abs(ys) <= np.sqrt(3.0) * (size_km - np.abs(xs))
        )
        good = np.flatnonzero(inside)[:need]
        points[filled : filled + good.size, 0] = xs[good] + cx
        points[filled : filled + good.size, 1] = ys[good] + cy
        filled += good.size
    return points


def bin_locations(
    records: Iterable[LocationRecord], resolution: int
) -> Dict[CellId, Tuple[int, int]]:
    """Aggregate records into (unserved, underserved) counts per cell.

    Cells are re-derived from each record's position on a grid of the
    given resolution; 'unserved' follows the FCC 25/3 bar, locations at or
    above 100/20 are dropped (served).
    """
    grid = HexGrid(resolution)
    counts: Dict[CellId, List[int]] = {}
    for record in records:
        if record.is_served:
            continue
        cell = grid.cell_for(record.position)
        bucket = counts.setdefault(cell, [0, 0])
        if record.is_unserved:
            bucket[0] += 1
        else:
            bucket[1] += 1
    return {cell: (u, d) for cell, (u, d) in counts.items()}


_LOCATION_HEADERS = [
    "location_id",
    "lat_deg",
    "lon_deg",
    "cell_token",
    "county_id",
    "technology",
    "max_download_mbps",
    "max_upload_mbps",
]


def write_locations_csv(
    records: Iterable[LocationRecord], path: Union[str, Path]
) -> Path:
    """Write records in a BDC-like CSV schema."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_LOCATION_HEADERS)
        for record in records:
            writer.writerow(
                [
                    record.location_id,
                    f"{record.position.lat_deg:.6f}",
                    f"{record.position.lon_deg:.6f}",
                    record.cell.token,
                    record.county_id,
                    int(record.technology),
                    f"{record.max_download_mbps:.1f}",
                    f"{record.max_upload_mbps:.1f}",
                ]
            )
    return target


def read_locations_csv(path: Union[str, Path]) -> List[LocationRecord]:
    """Read records written by :func:`write_locations_csv`."""
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"no such file: {file_path}")
    records = []
    with file_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != _LOCATION_HEADERS:
            raise DatasetError(
                f"{file_path}: unexpected headers {reader.fieldnames}"
            )
        for row in reader:
            records.append(
                LocationRecord(
                    location_id=int(row["location_id"]),
                    position=LatLon(
                        float(row["lat_deg"]), float(row["lon_deg"])
                    ),
                    cell=CellId.from_token(row["cell_token"]),
                    county_id=int(row["county_id"]),
                    technology=TechnologyCode(int(row["technology"])),
                    max_download_mbps=float(row["max_download_mbps"]),
                    max_upload_mbps=float(row["max_upload_mbps"]),
                )
            )
    return records
