"""Packaged sample dataset: a ready-to-use Appalachian region.

The national generator takes a couple of seconds; for docs, notebooks,
and smoke tests a pre-generated regional extract ships with the package
(864 cells around the paper's peak-demand area, including the planted
5998-location cell).
"""

from __future__ import annotations

from importlib import resources

from repro.demand.dataset import DemandDataset
from repro.demand.loader import read_dataset
from repro.errors import DatasetError


def load_sample_region() -> DemandDataset:
    """The packaged Appalachian sample (225k locations, 864 cells)."""
    package = resources.files("repro.data")
    cells = package / "sample_cells.csv"
    counties = package / "sample_counties.csv"
    if not cells.is_file() or not counties.is_file():
        raise DatasetError("packaged sample data missing from installation")
    with resources.as_file(cells) as cells_path, resources.as_file(
        counties
    ) as counties_path:
        return read_dataset(
            cells_path, counties_path, description="packaged Appalachia sample"
        )
