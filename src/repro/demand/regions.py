"""Study regions beyond CONUS (the paper's declared future work).

The paper confines its evaluation to the United States and leaves other
countries' connectivity goals as future work. The synthetic generator
only truly needs a boundary polygon, a county count, and calibration
anchors — all of which this module packages as :class:`StudyRegion` so
the same pipeline runs on any stylized geography.

Two stylized non-US regions ship as worked examples:

* ``andes_highlands`` — a long, narrow, mid-southern-latitude country
  (Chile-like), interesting because its latitude span crosses the
  53-degree shells' density peak;
* ``northern_archipelago`` — a high-latitude region near the 53-degree
  inclination edge, where e(phi) is large and constellations are cheap
  per cell but uplink/coverage geometry is marginal.

These are *stylized*: their demand statistics are hypotheses, not data,
and are labeled as such.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import CalibrationError
from repro.geo.coords import LatLon
from repro.geo.polygon import Polygon


@dataclass(frozen=True)
class StudyRegion:
    """A study geography for the synthetic demand generator."""

    name: str
    #: Boundary vertices, (lat, lon) degrees, simple polygon.
    outline: Tuple[Tuple[float, float], ...]
    #: County-equivalent administrative units to synthesize.
    county_count: int
    #: Planted dense cells: (locations, lat, lon) — must lie inside.
    planted_peaks: Tuple[Tuple[int, float, float], ...]
    #: Total un(der)served locations to synthesize.
    total_locations: int

    def __post_init__(self) -> None:
        if len(self.outline) < 3:
            raise CalibrationError(f"region {self.name}: outline too short")
        if self.county_count <= 0:
            raise CalibrationError(f"region {self.name}: no counties")
        if self.total_locations <= 0:
            raise CalibrationError(f"region {self.name}: no locations")
        boundary = self.boundary_polygon()
        for count, lat, lon in self.planted_peaks:
            if count <= 0:
                raise CalibrationError(
                    f"region {self.name}: non-positive peak {count!r}"
                )
            if not boundary.contains(LatLon(lat, lon)):
                raise CalibrationError(
                    f"region {self.name}: peak at ({lat}, {lon}) outside "
                    "the boundary"
                )

    def boundary_polygon(self) -> Polygon:
        return Polygon([LatLon(lat, lon) for lat, lon in self.outline])


def andes_highlands() -> StudyRegion:
    """A stylized long, narrow Andean country (25S..45S along 70W)."""
    return StudyRegion(
        name="Andes Highlands (stylized)",
        outline=(
            (-25.0, -71.5),
            (-30.0, -72.0),
            (-35.0, -73.0),
            (-40.0, -74.3),
            (-45.0, -74.5),
            (-45.0, -71.5),
            (-40.0, -71.0),
            (-35.0, -69.8),
            (-30.0, -69.8),
            (-25.0, -68.2),
        ),
        county_count=120,
        planted_peaks=((3200, -33.2, -70.9), (2100, -36.8, -72.3)),
        total_locations=420_000,
    )


def northern_archipelago() -> StudyRegion:
    """A stylized high-latitude region hugging the 53-degree density edge."""
    return StudyRegion(
        name="Northern Archipelago (stylized)",
        outline=(
            (55.0, -10.0),
            (55.0, 5.0),
            (62.0, 8.0),
            (65.0, 0.0),
            (63.0, -12.0),
        ),
        county_count=60,
        planted_peaks=((1800, 59.5, -2.0),),
        total_locations=250_000,
    )
