"""Broadband-serviceable-location data structures.

Mirrors the shape of the FCC Broadband Data Collection after the paper's
preprocessing: locations classified served / underserved / unserved against
the 100/20 reliable-broadband bar, aggregated into Starlink service cells,
and joined to the county that contains them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DatasetError
from repro.geo.coords import LatLon
from repro.geo.hexgrid import CellId


@dataclass(frozen=True)
class County:
    """A county with the single attribute the paper's analysis uses."""

    county_id: int
    name: str
    seat: LatLon
    median_household_income_usd: float

    def __post_init__(self) -> None:
        if self.median_household_income_usd <= 0.0:
            raise DatasetError(
                f"county {self.name}: non-positive income "
                f"{self.median_household_income_usd!r}"
            )

    @property
    def median_monthly_income_usd(self) -> float:
        return self.median_household_income_usd / 12.0


@dataclass(frozen=True)
class ServiceCell:
    """One Starlink service cell's un(der)served demand.

    ``unserved_locations`` have no 100/20 offer at all; ``underserved``
    locations have an offer below the bar. The capacity model treats them
    identically (both need service), so :attr:`total_locations` is the
    quantity every downstream computation consumes.
    """

    cell: CellId
    center: LatLon
    county_id: int
    unserved_locations: int
    underserved_locations: int

    def __post_init__(self) -> None:
        if self.unserved_locations < 0 or self.underserved_locations < 0:
            raise DatasetError(
                f"cell {self.cell.token}: negative location count"
            )

    @property
    def total_locations(self) -> int:
        """Locations lacking reliable broadband in this cell."""
        return self.unserved_locations + self.underserved_locations

    @property
    def latitude_deg(self) -> float:
        return self.center.lat_deg

    def demand_mbps(self, per_location_mbps: float = 100.0) -> float:
        """Raw (non-oversubscribed) downlink demand of this cell."""
        if per_location_mbps <= 0.0:
            raise DatasetError(
                f"per-location rate must be positive: {per_location_mbps!r}"
            )
        return self.total_locations * per_location_mbps
