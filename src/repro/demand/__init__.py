"""Demand substrate: the synthetic national broadband map and census join.

The paper's inputs are the FCC National Broadband Map (which locations lack
100/20 "reliable broadband", binned into Starlink's H3 service cells) and
US Census county median household incomes. Neither dataset ships with this
library; instead, :mod:`repro.demand.synthetic` generates a seeded national
map whose *published statistics match the paper's* (per-cell distribution
quantiles, planted top cells, totals), and :mod:`repro.demand.census`
assigns county incomes whose location-weighted distribution matches the
paper's affordability anchors. DESIGN.md section 2 documents why this
substitution preserves every downstream result.
"""

from repro.demand.bsl import County, ServiceCell
from repro.demand.dataset import DemandDataset
from repro.demand.growth import BassDiffusion, GrowthAnalysis
from repro.demand.quantiles import QuantileCurve
from repro.demand.regions import StudyRegion, andes_highlands, northern_archipelago
from repro.demand.samples import load_sample_region
from repro.demand.served import DefectionAnalysis, ServedLayerConfig
from repro.demand.synthetic import (
    SyntheticMapConfig,
    generate_national_map,
)

__all__ = [
    "County",
    "ServiceCell",
    "DemandDataset",
    "BassDiffusion",
    "GrowthAnalysis",
    "QuantileCurve",
    "StudyRegion",
    "andes_highlands",
    "northern_archipelago",
    "load_sample_region",
    "DefectionAnalysis",
    "ServedLayerConfig",
    "SyntheticMapConfig",
    "generate_national_map",
]
