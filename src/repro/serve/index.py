"""Precomputed per-cell serving index with epoch/snapshot semantics.

A :class:`ServeIndex` is an immutable snapshot: the static layer (per-cell
demand counts, county join, required oversubscription — properties of the
dataset alone) is computed once at build time straight from the batch
pipeline's exporters, and the scenario layer (per-cell cap, served counts,
affordability matrix) is recomputed per scenario *into fresh arrays*,
never in place. Scenario changes therefore produce a brand-new index with
``epoch + 1``; readers holding the old snapshot keep getting internally
consistent answers, and the engine swap is a single reference assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.affordability import AffordabilityAnalysis
from repro.core.capacity import SatelliteCapacityModel
from repro.core.oversubscription import (
    OversubscriptionAnalysis,
    cell_location_cap,
)
from repro.demand.dataset import DemandDataset
from repro.demand.locations import LocationTable
from repro.econ.plans import BroadbandPlan
from repro.errors import ServeError
from repro.serve.scenario import ScenarioParams, serve_plans
from repro.serve.shards import DEFAULT_SHARD_ROWS, ShardStore


@dataclass(frozen=True, eq=False)
class ServeIndex:
    """One epoch's immutable view: shard store + per-cell answer arrays."""

    epoch: int
    params: ScenarioParams
    store: ShardStore
    plans: Tuple[BroadbandPlan, ...]
    capacity: SatelliteCapacityModel
    dataset_fingerprint: str
    grid_resolution: int
    # -- static layer (aligned to ``store.unique_keys``) -------------------
    cell_counts: np.ndarray
    cell_county: np.ndarray
    cell_monthly_income: np.ndarray
    required_oversub: np.ndarray
    county_cells: Dict[int, np.ndarray]
    county_monthly_income: Dict[int, float]
    # -- scenario layer ----------------------------------------------------
    per_cell_cap: int
    served_count: np.ndarray
    fully_served: np.ndarray
    affordable: np.ndarray  # (n_cells, n_plans) bool

    @property
    def scenario_id(self) -> str:
        return self.params.scenario_id

    @property
    def n_cells(self) -> int:
        return self.store.n_cells

    def __len__(self) -> int:
        return len(self.store)

    # -- incremental scenario recompute ------------------------------------

    def scenario_slice(
        self, params: ScenarioParams, cell_start: int, cell_stop: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The new scenario layer for one cell range, as fresh arrays.

        Element-for-element the same IEEE/integer operations as the batch
        exporters (:meth:`OversubscriptionAnalysis.outcome_arrays`,
        :meth:`AffordabilityAnalysis.affordable_matrix`), so a shard-wise
        rebuild lands on byte-identical answers.
        """
        cap = cell_location_cap(
            self.capacity, params.oversubscription, params.beamspread
        )
        counts = self.cell_counts[cell_start:cell_stop]
        incomes = self.cell_monthly_income[cell_start:cell_stop]
        served = np.minimum(counts, cap)
        fully = counts <= cap
        affordable = np.empty((len(counts), len(self.plans)), dtype=bool)
        for j, plan in enumerate(self.plans):
            affordable[:, j] = ~(
                plan.monthly_cost_usd > params.income_share * incomes
            )
        return served, fully, affordable

    def with_scenario(
        self,
        params: ScenarioParams,
        served_count: np.ndarray,
        fully_served: np.ndarray,
        affordable: np.ndarray,
    ) -> "ServeIndex":
        """Next-epoch snapshot around a fully assembled scenario layer."""
        return replace(
            self,
            epoch=self.epoch + 1,
            params=params,
            per_cell_cap=cell_location_cap(
                self.capacity, params.oversubscription, params.beamspread
            ),
            served_count=served_count,
            fully_served=fully_served,
            affordable=affordable,
        )

    def with_params(self, params: ScenarioParams) -> "ServeIndex":
        """Synchronous scenario change: recompute every shard, bump epoch."""
        with obs.span(
            "serve.index.refresh",
            scenario=params.scenario_id,
            shards=len(self.store.shards),
        ):
            served = np.empty(self.n_cells, dtype=np.int64)
            fully = np.empty(self.n_cells, dtype=bool)
            affordable = np.empty((self.n_cells, len(self.plans)), dtype=bool)
            for shard in self.store.shards:
                s, f, a = self.scenario_slice(
                    params, shard.cell_start, shard.cell_stop
                )
                served[shard.cell_start : shard.cell_stop] = s
                fully[shard.cell_start : shard.cell_stop] = f
                affordable[shard.cell_start : shard.cell_stop] = a
            return self.with_scenario(params, served, fully, affordable)


def _group_cells_by_county(cell_county: np.ndarray) -> Dict[int, np.ndarray]:
    order = np.argsort(cell_county, kind="stable")
    counties, starts = np.unique(cell_county[order], return_index=True)
    bounds = np.concatenate([starts, [len(cell_county)]])
    return {
        int(county): order[bounds[i] : bounds[i + 1]]
        for i, county in enumerate(counties)
    }


def build_index(
    table: LocationTable,
    dataset: DemandDataset,
    params: Optional[ScenarioParams] = None,
    plans: Optional[Sequence[BroadbandPlan]] = None,
    capacity: Optional[SatelliteCapacityModel] = None,
    target_shard_rows: int = DEFAULT_SHARD_ROWS,
) -> ServeIndex:
    """Build the epoch-0 index for a (table, dataset) pair.

    The scenario layer comes straight from the batch pipeline's own
    exporters — the serving layer indexes batch answers, it does not
    reimplement them. Raises :class:`ServeError` when the table and
    dataset disagree (per-cell row counts vs. dataset counts, county
    joins, cells present in one but not the other).
    """
    params = params or ScenarioParams()
    plan_list = tuple(plans if plans is not None else serve_plans())
    if not plan_list:
        raise ServeError("no plans given")
    capacity = capacity or SatelliteCapacityModel()
    with obs.span(
        "serve.index.build",
        rows=len(table),
        cells=len(dataset.cells),
        scenario=params.scenario_id,
    ) as span:
        store = ShardStore.from_table(table, target_shard_rows)
        analysis = OversubscriptionAnalysis(dataset, capacity)
        outcomes = analysis.outcome_arrays(
            params.oversubscription, params.beamspread
        )
        affordability = AffordabilityAnalysis(dataset)
        matrix = affordability.affordable_matrix(
            plan_list, params.income_share
        )
        dataset_keys = np.array(
            [c.cell.key for c in dataset.cells], dtype=np.uint64
        )
        positions = store.cell_index_for_keys(dataset_keys)
        occupied = outcomes["counts"] > 0
        if (positions[occupied] < 0).any():
            missing = int(np.flatnonzero(occupied & (positions < 0))[0])
            raise ServeError(
                f"dataset cell {dataset.cells[missing].cell.token} has "
                "demand but no table rows"
            )
        # Invert dataset order -> store order; every store cell must map
        # back to exactly one dataset cell.
        inverse = np.full(store.n_cells, -1, dtype=np.int64)
        present = positions >= 0
        inverse[positions[present]] = np.flatnonzero(present)
        if (inverse < 0).any():
            orphan = int(store.unique_keys[np.flatnonzero(inverse < 0)[0]])
            raise ServeError(f"table cell {orphan:015x} not in dataset")
        cell_counts = outcomes["counts"][inverse]
        table_counts = np.diff(store.cell_starts)
        if (cell_counts != table_counts).any():
            bad = int(np.flatnonzero(cell_counts != table_counts)[0])
            raise ServeError(
                f"cell {int(store.unique_keys[bad]):015x}: dataset says "
                f"{int(cell_counts[bad])} locations, table has "
                f"{int(table_counts[bad])}"
            )
        cell_county = np.array(
            [c.county_id for c in dataset.cells], dtype=np.int64
        )[inverse]
        if len(store) and (
            cell_county[store.row_cell] != store.county_id
        ).any():
            raise ServeError("table county join disagrees with dataset")
        span.set(shards=len(store.shards))
        return ServeIndex(
            epoch=0,
            params=params,
            store=store,
            plans=plan_list,
            capacity=capacity,
            dataset_fingerprint=dataset.fingerprint(),
            grid_resolution=dataset.grid_resolution,
            cell_counts=cell_counts,
            cell_county=cell_county,
            cell_monthly_income=(dataset.cell_incomes() / 12.0)[inverse],
            required_oversub=outcomes["required_oversubscription"][inverse],
            county_cells=_group_cells_by_county(cell_county),
            county_monthly_income={
                county_id: county.median_household_income_usd / 12.0
                for county_id, county in dataset.counties.items()
            },
            per_cell_cap=int(outcomes["per_cell_cap"][0])
            if len(outcomes["per_cell_cap"])
            else cell_location_cap(
                capacity, params.oversubscription, params.beamspread
            ),
            served_count=outcomes["served_locations"][inverse],
            fully_served=outcomes["fully_served"][inverse],
            affordable=matrix[inverse],
        )
