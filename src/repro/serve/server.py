"""JSON-lines TCP front end for the query engine (stdlib asyncio only).

One request per line, one response per line. Requests are JSON objects
with an ``op`` field; responses echo ``ok`` plus the engine's answer (and
the answer's ``epoch``/``scenario_id``, so clients can detect snapshot
swaps). Errors come back as ``{"ok": false, "error": ...}`` — a bad
request never kills the connection.

Ops:

``ping``                  liveness check
``stats``                 service-level summary
``point_id``              ``{"location_ids": [...]}`` — batch point query
``point_latlon``          ``{"lat": .., "lon": ..}``
``cell``                  ``{"token": "..."}``
``county``                ``{"county_id": ..}``
``tiles``                 ``{"resolution": ..}`` (optional)
``set_params``            scenario change; responds after the epoch swap
``metrics``               cumulative + rolling metrics snapshots

Every request is timed into ``serve.request.latency_s`` — both the
cumulative histogram and a rolling window, so the ``metrics`` op (and
the ``--metrics-port`` Prometheus endpoint) expose a last-minute p99
alongside the since-start totals.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional

from repro import obs
from repro.errors import ReproError, ServeError
from repro.serve.engine import QueryEngine
from repro.serve.scenario import ScenarioParams


class ServeServer:
    """An asyncio TCP server wrapping one :class:`QueryEngine`."""

    def __init__(
        self, engine: QueryEngine, host: str = "127.0.0.1", port: int = 0
    ):
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        registry = obs.registry()
        self._request_latency = registry.histogram("serve.request.latency_s")
        self._rolling_latency = registry.rolling("serve.request.latency_s")

    async def start(self) -> "ServeServer":
        """Bind and start accepting connections (port 0 picks a free one)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.get_logger("serve").info(
            "serving on %s:%d epoch=%d",
            self.host,
            self.port,
            self.engine.epoch,
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        obs.registry().counter("serve.connections").inc()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                started = time.perf_counter()
                response = await self._dispatch_line(line)
                elapsed = time.perf_counter() - started
                self._request_latency.observe(elapsed)
                self._rolling_latency.observe(elapsed)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # No wait_closed here: the handler task may be cancelled by
            # stop() mid-await, which asyncio.streams reports noisily.
            writer.close()

    async def _dispatch_line(self, line: bytes) -> Dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServeError("request must be a JSON object")
            answer = await self._dispatch(request)
            return {"ok": True, **answer}
        except ReproError as exc:
            obs.registry().counter("serve.errors").inc()
            return {"ok": False, "error": str(exc)}
        except (ValueError, KeyError, TypeError) as exc:
            obs.registry().counter("serve.errors").inc()
            return {"ok": False, "error": f"bad request: {exc}"}

    async def _dispatch(self, request: Dict) -> Dict:
        op = request.get("op")
        engine = self.engine
        if op == "ping":
            return {"pong": True, "epoch": engine.epoch}
        if op == "stats":
            return engine.stats()
        if op == "point_id":
            return engine.point_by_id(request["location_ids"])
        if op == "point_latlon":
            return engine.point_by_latlon(
                float(request["lat"]), float(request["lon"])
            )
        if op == "cell":
            return engine.cell_answer(str(request["token"]))
        if op == "county":
            return engine.county_answer(int(request["county_id"]))
        if op == "tiles":
            collection = engine.tiles_geojson(
                int(request.get("resolution", 3))
            )
            return {"epoch": engine.epoch, "collection": collection}
        if op == "metrics":
            registry = obs.registry()
            return {
                "epoch": engine.epoch,
                "metrics": registry.snapshot(),
                "rolling": registry.rolling_snapshot(),
            }
        if op == "set_params":
            params = ScenarioParams(
                oversubscription=float(
                    request.get(
                        "oversubscription",
                        engine.index.params.oversubscription,
                    )
                ),
                beamspread=float(
                    request.get("beamspread", engine.index.params.beamspread)
                ),
                income_share=float(
                    request.get(
                        "income_share", engine.index.params.income_share
                    )
                ),
            )
            return await engine.update_params(params)
        raise ServeError(f"unknown op: {op!r}")


class ServeClient:
    """Minimal asyncio JSON-lines client (tests and the load generator)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def request(self, payload: Dict) -> Dict:
        """One round trip; raises :class:`ServeError` on ``ok: false``."""
        if self._reader is None or self._writer is None:
            raise ServeError("client is not connected")
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServeError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    async def point_by_id(self, location_ids: List[int]) -> Dict:
        return await self.request(
            {"op": "point_id", "location_ids": list(location_ids)}
        )
