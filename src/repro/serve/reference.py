"""Record-at-a-time reference answers for the differential test suite.

Deliberately naive: every answer is recomputed from the raw table and
dataset with the batch pipeline's *scalar* methods — no sorting, no
precomputed index, no vectorization. The differential suite asserts the
service's indexed answers equal these, field for field, which is the
PR's correctness gate: if the precompute-then-index refactor diverges
from the batch pipeline anywhere, these tests catch it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.capacity import SatelliteCapacityModel
from repro.core.oversubscription import cell_location_cap
from repro.demand.dataset import DemandDataset
from repro.demand.locations import LocationTable
from repro.econ.plans import BroadbandPlan
from repro.errors import ServeError
from repro.serve.scenario import ScenarioParams, serve_plans


def _affordable_plans(
    plans: Sequence[BroadbandPlan], county_income_usd: float, income_share: float
) -> List[str]:
    # The exact predicate of AffordabilityAnalysis.unaffordable_locations,
    # negated, against the county's monthly income.
    monthly = county_income_usd / 12.0
    return [
        plan.name
        for plan in plans
        if not (plan.monthly_cost_usd > income_share * monthly)
    ]


def reference_point_answer(
    table: LocationTable,
    dataset: DemandDataset,
    location_id: int,
    params: Optional[ScenarioParams] = None,
    plans: Optional[Sequence[BroadbandPlan]] = None,
    capacity: Optional[SatelliteCapacityModel] = None,
) -> Dict:
    """The batch pipeline's answer for one location, the slow way."""
    params = params or ScenarioParams()
    plans = list(plans if plans is not None else serve_plans())
    capacity = capacity or SatelliteCapacityModel()
    rows = np.flatnonzero(table.location_id == location_id)
    if rows.size == 0:
        raise ServeError(f"unknown location id {int(location_id)}")
    row = int(rows[0])
    key = int(table.cell_key[row])
    same_cell = np.flatnonzero(table.cell_key == table.cell_key[row])
    n = int(same_cell.size)
    rank = int(
        np.count_nonzero(table.location_id[same_cell] < location_id)
    )
    cap = cell_location_cap(capacity, params.oversubscription, params.beamspread)
    county_id = int(table.county_id[row])
    return {
        "location_id": int(location_id),
        "cell": f"{key:015x}",
        "county_id": county_id,
        "served": rank < cap,
        "rank_in_cell": rank,
        "cell_locations": n,
        "per_cell_cap": cap,
        "cell_fully_served": n <= cap,
        "required_oversubscription": capacity.required_oversubscription(n),
        "affordable_plans": _affordable_plans(
            plans,
            dataset.counties[county_id].median_household_income_usd,
            params.income_share,
        ),
    }


def reference_cell_answer(
    table: LocationTable,
    dataset: DemandDataset,
    token: str,
    params: Optional[ScenarioParams] = None,
    plans: Optional[Sequence[BroadbandPlan]] = None,
    capacity: Optional[SatelliteCapacityModel] = None,
) -> Dict:
    """The batch pipeline's per-cell aggregate, the slow way."""
    params = params or ScenarioParams()
    plans = list(plans if plans is not None else serve_plans())
    capacity = capacity or SatelliteCapacityModel()
    key = int(token, 16)
    rows = np.flatnonzero(table.cell_key == np.uint64(key))
    if rows.size == 0:
        return {"cell": token, "in_dataset": False}
    n = int(rows.size)
    cap = cell_location_cap(capacity, params.oversubscription, params.beamspread)
    county_id = int(table.county_id[rows[0]])
    return {
        "cell": token,
        "in_dataset": True,
        "county_id": county_id,
        "locations": n,
        "served_locations": min(n, cap),
        "per_cell_cap": cap,
        "fully_served": n <= cap,
        "required_oversubscription": capacity.required_oversubscription(n),
        "affordable_plans": _affordable_plans(
            plans,
            dataset.counties[county_id].median_household_income_usd,
            params.income_share,
        ),
    }


def reference_county_answer(
    table: LocationTable,
    dataset: DemandDataset,
    county_id: int,
    params: Optional[ScenarioParams] = None,
    plans: Optional[Sequence[BroadbandPlan]] = None,
    capacity: Optional[SatelliteCapacityModel] = None,
) -> Dict:
    """The batch pipeline's per-county aggregate, the slow way.

    Counts only occupied cells (cells with table rows), matching the
    serving index, which is built from the table.
    """
    params = params or ScenarioParams()
    plans = list(plans if plans is not None else serve_plans())
    capacity = capacity or SatelliteCapacityModel()
    if county_id not in dataset.counties:
        return {"county_id": county_id, "in_dataset": False}
    cap = cell_location_cap(capacity, params.oversubscription, params.beamspread)
    cells = 0
    locations = 0
    served = 0
    fully = 0
    for cell in dataset.cells:
        if cell.county_id != county_id or cell.total_locations == 0:
            continue
        cells += 1
        locations += cell.total_locations
        served += min(cell.total_locations, cap)
        fully += int(cell.total_locations <= cap)
    return {
        "county_id": county_id,
        "in_dataset": True,
        "cells": cells,
        "locations": locations,
        "served_locations": served,
        "fully_served_cells": fully,
        "affordable_plans": _affordable_plans(
            plans,
            dataset.counties[county_id].median_household_income_usd,
            params.income_share,
        ),
    }
