"""Interactive "can I get served?" query layer over the batch pipeline.

The batch pipeline (:mod:`repro.core`) answers the paper's questions by
recomputing aggregates over the full demand dataset. This package answers
the same questions *per location* at interactive latency: a memory-mapped
:class:`~repro.demand.locations.LocationTable` is sharded by packed
cell-key range (:mod:`repro.serve.shards`), per-cell scenario outcomes are
precomputed into an immutable epoch-stamped snapshot
(:mod:`repro.serve.index`), and an asyncio query engine
(:mod:`repro.serve.engine`) swaps snapshots atomically so concurrent
readers never observe a half-updated index.

Every answer is byte-equal to the batch pipeline — the differential suite
in ``tests/serve`` proves it against :mod:`repro.serve.reference`, a
deliberately independent record-at-a-time implementation.
"""

from repro.serve.engine import QueryEngine
from repro.serve.index import ServeIndex, build_index
from repro.serve.loadgen import run_load, run_serving_bench
from repro.serve.reference import (
    reference_cell_answer,
    reference_county_answer,
    reference_point_answer,
)
from repro.serve.scenario import ScenarioParams, serve_plans
from repro.serve.server import ServeClient, ServeServer
from repro.serve.shards import Shard, ShardStore
from repro.serve.tiles import tile_aggregates, tiles_to_geojson

__all__ = [
    "QueryEngine",
    "ScenarioParams",
    "ServeClient",
    "ServeIndex",
    "ServeServer",
    "Shard",
    "ShardStore",
    "build_index",
    "reference_cell_answer",
    "reference_county_answer",
    "reference_point_answer",
    "run_load",
    "run_serving_bench",
    "serve_plans",
    "tile_aggregates",
    "tiles_to_geojson",
]
