"""Load generator and serving benchmark (``BENCH_serving.json``).

``run_load`` drives a running server over N concurrent connections with
batched point queries, measuring per-request round-trip latency and
point-query throughput. ``run_serving_bench`` wraps it end to end —
build the index, start an in-process server on an ephemeral port, load
it for a fixed duration, and return the JSON-ready results dict the
``repro-divide bench-serve`` command writes to ``BENCH_serving.json``.
"""

from __future__ import annotations

import asyncio
import platform
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro import obs
from repro.demand.dataset import DemandDataset
from repro.demand.locations import LocationTable
from repro.errors import ServeError
from repro.serve.engine import QueryEngine
from repro.serve.index import build_index
from repro.serve.scenario import ScenarioParams
from repro.serve.server import ServeClient, ServeServer

BENCH_SERVING_SCHEMA = "repro-bench-serving/1"


async def run_load(
    host: str,
    port: int,
    location_ids: Sequence[int],
    duration_s: float = 10.0,
    connections: int = 2,
    batch_size: int = 128,
    seed: int = 0,
) -> Dict:
    """Drive a server with batched point queries for ``duration_s``.

    Each connection loops pre-drawn random id batches until the deadline;
    latency is the per-request (one batch) round trip, throughput counts
    individual point queries. Returns the measured load summary.
    """
    if not len(location_ids):
        raise ServeError("load generator needs a non-empty id pool")
    if duration_s <= 0.0 or connections <= 0 or batch_size <= 0:
        raise ServeError("load parameters must be positive")
    rng = np.random.default_rng(seed)
    pool = np.asarray(location_ids, dtype=np.int64)

    async def worker(worker_seed: int) -> Dict:
        worker_rng = np.random.default_rng(worker_seed)
        # Pre-draw a rotation of batches so sampling stays off the
        # latency path.
        batches = [
            [int(v) for v in worker_rng.choice(pool, size=batch_size)]
            for _ in range(32)
        ]
        latencies = []
        queries = 0
        epochs = set()
        async with ServeClient(host, port) as client:
            deadline = time.perf_counter() + duration_s
            turn = 0
            while time.perf_counter() < deadline:
                batch = batches[turn % len(batches)]
                turn += 1
                start = time.perf_counter()
                response = await client.point_by_id(batch)
                latencies.append(time.perf_counter() - start)
                queries += len(batch)
                epochs.add(response["epoch"])
        return {"latencies": latencies, "queries": queries, "epochs": epochs}

    start = time.perf_counter()
    results = await asyncio.gather(
        *(worker(int(rng.integers(2**31))) for _ in range(connections))
    )
    elapsed = time.perf_counter() - start
    latencies = np.array(
        [latency for r in results for latency in r["latencies"]]
    )
    queries = sum(r["queries"] for r in results)
    epochs = sorted(set().union(*(r["epochs"] for r in results)))
    qps = queries / elapsed if elapsed > 0 else 0.0
    obs.registry().gauge("serve.qps").set(qps)
    return {
        "duration_s": elapsed,
        "connections": connections,
        "batch_size": batch_size,
        "requests": int(latencies.size),
        "queries": int(queries),
        "qps": qps,
        "epochs_observed": [int(e) for e in epochs],
        "latency_s": {
            "p50": float(np.percentile(latencies, 50)),
            "p95": float(np.percentile(latencies, 95)),
            "p99": float(np.percentile(latencies, 99)),
            "max": float(latencies.max()),
        },
    }


def run_serving_bench(
    table: LocationTable,
    dataset: DemandDataset,
    params: Optional[ScenarioParams] = None,
    duration_s: float = 10.0,
    connections: int = 2,
    batch_size: int = 128,
    seed: int = 0,
) -> Dict:
    """Index + in-process server + load run, as one JSON-ready dict."""
    with obs.span("serve.bench", rows=len(table)) as span:
        build_start = time.perf_counter()
        index = build_index(table, dataset, params)
        index_build_s = time.perf_counter() - build_start
        engine = QueryEngine(index)

        async def drive() -> Dict:
            server = await ServeServer(engine, port=0).start()
            try:
                return await run_load(
                    server.host,
                    server.port,
                    index.store.location_id,
                    duration_s=duration_s,
                    connections=connections,
                    batch_size=batch_size,
                    seed=seed,
                )
            finally:
                await server.stop()

        load = asyncio.run(drive())
        span.set(qps=load["qps"])
        return {
            "schema": BENCH_SERVING_SCHEMA,
            "commit": obs.git_sha(),
            "config": {
                "locations": len(table),
                "cells": index.n_cells,
                "shards": len(index.store.shards),
                "scenario_id": index.scenario_id,
                "oversubscription": index.params.oversubscription,
                "beamspread": index.params.beamspread,
                "income_share": index.params.income_share,
                "dataset_fingerprint": index.dataset_fingerprint,
            },
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "index_build_s": index_build_s,
            "load": load,
            "qps": load["qps"],
            "p99_s": load["latency_s"]["p99"],
        }


def format_serving_summary(results: Dict) -> str:
    """Human-readable one-screen summary of a serving bench dict."""
    config = results["config"]
    load = results["load"]
    latency = load["latency_s"]
    return "\n".join(
        [
            "serving bench: {locations} locations x {cells} cells "
            "({shards} shards, scenario {scenario_id})".format(**config),
            "  index build: {:.3f}s".format(results["index_build_s"]),
            "  {queries} point queries / {requests} requests over "
            "{connections} connections in {duration_s:.1f}s".format(**load),
            "  throughput: {:,.0f} point queries/s".format(load["qps"]),
            "  latency: p50 {:.2f} ms, p95 {:.2f} ms, p99 {:.2f} ms".format(
                latency["p50"] * 1e3,
                latency["p95"] * 1e3,
                latency["p99"] * 1e3,
            ),
        ]
    )
