"""Cell-key-range sharding of a columnar location table.

The serving layer never scans the raw :class:`LocationTable`. At index
build time the table is sorted once by (cell key, location id) and cut
into contiguous shards aligned to cell boundaries — a cell's rows never
straddle two shards, so a scenario change can recompute one shard's
per-cell outcomes without touching its neighbours.

Row order within a cell (ascending location id) is load-bearing: a
location is served iff its rank within its cell is below the scenario's
per-cell cap, which makes the per-location answers sum exactly to the
batch pipeline's ``min(count, cap)`` per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro import obs
from repro.demand.locations import LocationTable
from repro.errors import ServeError

#: Default shard granularity, in rows. Small enough that recomputing one
#: shard is cheap, large enough that per-shard overhead stays negligible
#: at the 4.66 M-location national scale (~18 shards).
DEFAULT_SHARD_ROWS = 262_144


@dataclass(frozen=True)
class Shard:
    """One contiguous (row range, cell range) slice of the sorted table."""

    index: int
    row_start: int
    row_stop: int
    cell_start: int
    cell_stop: int

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def n_cells(self) -> int:
        return self.cell_stop - self.cell_start


class ShardStore:
    """The sorted columnar table plus its cell directory and shard cuts.

    Static with respect to scenario parameters: built once per dataset,
    shared by every :class:`~repro.serve.index.ServeIndex` epoch.
    """

    def __init__(
        self,
        location_id: np.ndarray,
        cell_key: np.ndarray,
        county_id: np.ndarray,
        lat_deg: np.ndarray,
        lon_deg: np.ndarray,
        unique_keys: np.ndarray,
        cell_starts: np.ndarray,
        row_cell: np.ndarray,
        rank_in_cell: np.ndarray,
        shards: Tuple[Shard, ...],
        id_order: np.ndarray,
    ):
        self.location_id = location_id
        self.cell_key = cell_key
        self.county_id = county_id
        self.lat_deg = lat_deg
        self.lon_deg = lon_deg
        self.unique_keys = unique_keys
        self.cell_starts = cell_starts
        self.row_cell = row_cell
        self.rank_in_cell = rank_in_cell
        self.shards = shards
        self._id_order = id_order
        self._ids_sorted = location_id[id_order]
        self._cell_tokens = None

    @property
    def cell_tokens(self):
        """Per-cell hex tokens, formatted once and shared by every query."""
        if self._cell_tokens is None:
            self._cell_tokens = [
                f"{int(key):015x}" for key in self.unique_keys
            ]
        return self._cell_tokens

    @classmethod
    def from_table(
        cls,
        table: LocationTable,
        target_shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> "ShardStore":
        """Sort, index, and shard a location table."""
        if target_shard_rows <= 0:
            raise ServeError(
                f"target shard rows must be positive: {target_shard_rows!r}"
            )
        with obs.span("serve.shards.build", rows=len(table)) as span:
            order, id_order = cls._sort_orders(table)
            location_id = np.ascontiguousarray(table.location_id[order])
            cell_key = np.ascontiguousarray(table.cell_key[order])
            county_id = np.ascontiguousarray(table.county_id[order])
            lat_deg = np.ascontiguousarray(table.lat_deg[order])
            lon_deg = np.ascontiguousarray(table.lon_deg[order])
            n = len(location_id)
            if n and len(np.unique(location_id)) != n:
                raise ServeError("duplicate location ids in table")
            unique_keys, first_rows, per_cell = np.unique(
                cell_key, return_index=True, return_counts=True
            )
            cell_starts = np.concatenate(
                [first_rows, np.array([n], dtype=np.int64)]
            ).astype(np.int64)
            row_cell = np.repeat(
                np.arange(len(unique_keys), dtype=np.int64), per_cell
            )
            rank_in_cell = np.arange(n, dtype=np.int64) - cell_starts[row_cell]
            shards = cls._cut_shards(cell_starts, target_shard_rows)
            span.set(cells=len(unique_keys), shards=len(shards))
            return cls(
                location_id=location_id,
                cell_key=cell_key,
                county_id=county_id,
                lat_deg=lat_deg,
                lon_deg=lon_deg,
                unique_keys=unique_keys,
                cell_starts=cell_starts,
                row_cell=row_cell,
                rank_in_cell=rank_in_cell,
                shards=shards,
                id_order=id_order,
            )

    @staticmethod
    def _sort_orders(table: LocationTable) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_order, id_order)`` for the (cell_key, location_id) sort.

        The general path is a full-table ``np.lexsort`` plus an
        ``argsort`` of the gathered ids. Exploded tables don't need
        either: their rows arrive in contiguous runs of equal cell key —
        each key in exactly one run — with globally ascending location
        ids, so sorting the ~150 k *run* keys and gathering whole runs
        produces the identical permutation, and the id order is its
        inverse (ascending original ids mean
        ``argsort(location_id[order]) == argsort(order)``). Both facts
        are checked cheaply before taking the fused path, so arbitrary
        tables (CSV imports, shuffled rows, duplicate-key runs) fall
        back to the lexsort.
        """
        n = len(table)
        keys = table.cell_key
        ids = table.location_id
        if n:
            run_starts = np.flatnonzero(
                np.concatenate([np.ones(1, dtype=bool), keys[1:] != keys[:-1]])
            )
            run_keys = keys[run_starts]
            ids_ascending = bool(np.all(ids[1:] > ids[:-1]))
            runs_unique = len(np.unique(run_keys)) == len(run_keys)
            if ids_ascending and runs_unique:
                obs.registry().counter("serve.shards.grouped_fast_path").inc()
                run_order = np.argsort(run_keys, kind="stable")
                run_lens = np.diff(
                    np.concatenate([run_starts, np.array([n])])
                )
                picked_lens = run_lens[run_order]
                # Row order: each selected run's rows, in original order.
                out_starts = np.cumsum(picked_lens) - picked_lens
                order = (
                    np.arange(n, dtype=np.int64)
                    - np.repeat(out_starts, picked_lens)
                    + np.repeat(run_starts[run_order], picked_lens)
                )
                id_order = np.empty(n, dtype=np.int64)
                id_order[order] = np.arange(n, dtype=np.int64)
                return order, id_order
        order = np.lexsort((ids, keys))
        return order, np.argsort(ids[order], kind="stable")

    @staticmethod
    def _cut_shards(
        cell_starts: np.ndarray, target_shard_rows: int
    ) -> Tuple[Shard, ...]:
        """Cut cell-boundary-aligned shards of roughly ``target`` rows."""
        n_cells = len(cell_starts) - 1
        shards = []
        cell_start = 0
        for cell_stop in range(1, n_cells + 1):
            rows = cell_starts[cell_stop] - cell_starts[cell_start]
            if rows >= target_shard_rows or cell_stop == n_cells:
                shards.append(
                    Shard(
                        index=len(shards),
                        row_start=int(cell_starts[cell_start]),
                        row_stop=int(cell_starts[cell_stop]),
                        cell_start=cell_start,
                        cell_stop=cell_stop,
                    )
                )
                cell_start = cell_stop
        return tuple(shards)

    def __len__(self) -> int:
        return len(self.location_id)

    @property
    def n_cells(self) -> int:
        return len(self.unique_keys)

    def rows_for_location_ids(self, location_ids) -> np.ndarray:
        """Sorted-table row index of each requested location id."""
        ids = np.asarray(location_ids, dtype=np.int64)
        if ids.size == 0:
            return np.empty(0, dtype=np.int64)
        if len(self) == 0:
            raise ServeError(f"unknown location id {int(ids[0])}")
        positions = np.clip(
            np.searchsorted(self._ids_sorted, ids), 0, len(self) - 1
        )
        found = self._ids_sorted[positions] == ids
        if not found.all():
            raise ServeError(f"unknown location id {int(ids[~found][0])}")
        return self._id_order[positions]

    def cell_index_for_keys(self, keys) -> np.ndarray:
        """Index into :attr:`unique_keys` per key, or -1 where absent."""
        keys = np.asarray(keys, dtype=np.uint64)
        positions = np.searchsorted(self.unique_keys, keys)
        clipped = np.minimum(positions, max(self.n_cells - 1, 0))
        if self.n_cells == 0:
            return np.full(keys.shape, -1, dtype=np.int64)
        present = self.unique_keys[clipped] == keys
        return np.where(present, clipped, -1).astype(np.int64)
