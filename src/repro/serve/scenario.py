"""Scenario parameters a serving index is built for.

A scenario is the triple the batch pipeline sweeps: oversubscription
ratio, beamspread, and the affordability income share. The serving layer
precomputes one index per scenario; :meth:`ScenarioParams.scenario_id`
names it stably so responses can be traced back to the exact parameters
that produced them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from repro.core.affordability import figure4_plans
from repro.econ.plans import BroadbandPlan
from repro.econ.thresholds import AFFORDABILITY_INCOME_SHARE
from repro.errors import ServeError


def serve_plans() -> List[BroadbandPlan]:
    """The plans a serving index precomputes affordability for.

    The same four plans Figure 4 compares, in the same (cheapest-first)
    order, so service affordability columns line up with
    :meth:`repro.core.affordability.AffordabilityAnalysis.affordable_matrix`.
    """
    return figure4_plans()


@dataclass(frozen=True)
class ScenarioParams:
    """One servability scenario: (oversubscription, beamspread, income share)."""

    oversubscription: float = 20.0
    beamspread: float = 1.0
    income_share: float = AFFORDABILITY_INCOME_SHARE

    def __post_init__(self) -> None:
        if self.oversubscription <= 0.0:
            raise ServeError(
                f"oversubscription must be positive: {self.oversubscription!r}"
            )
        if self.beamspread < 1.0:
            raise ServeError(f"beamspread must be >= 1: {self.beamspread!r}")
        if self.income_share <= 0.0:
            raise ServeError(
                f"income share must be positive: {self.income_share!r}"
            )

    @property
    def scenario_id(self) -> str:
        """Stable short id of the exact parameter values.

        Hashes the ``repr`` of each float (lossless for IEEE doubles), so
        two scenarios share an id iff their parameters are bit-identical.
        """
        text = (
            f"oversubscription={self.oversubscription!r}"
            f"|beamspread={self.beamspread!r}"
            f"|income_share={self.income_share!r}"
        )
        return hashlib.sha256(text.encode("ascii")).hexdigest()[:12]
