"""The query engine: snapshot reads over an atomically swapped index.

Readers grab ``self._index`` exactly once per query, so every answer is
computed against a single epoch even while :meth:`QueryEngine.update_params`
is rebuilding the scenario layer shard by shard on the event loop. The
epoch and scenario id are echoed in every response — the concurrency
regression test asserts no response ever mixes epochs.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict

import numpy as np

from repro import obs
from repro.geo.hexgrid import HexGrid
from repro.serve.index import ServeIndex
from repro.serve.scenario import ScenarioParams
from repro.serve.tiles import DEFAULT_TILE_RESOLUTION, tiles_to_geojson


class QueryEngine:
    """Point, cell, county, and tile queries over a :class:`ServeIndex`."""

    def __init__(self, index: ServeIndex):
        self._index = index
        self._grid = HexGrid(index.grid_resolution)
        self._update_lock = asyncio.Lock()
        self._afford_cache = None
        registry = obs.registry()
        self._queries = registry.counter("serve.queries")
        self._points = registry.counter("serve.queries.points")
        self._errors = registry.counter("serve.errors")
        self._latency = registry.histogram("serve.query.latency_s")
        self._rolling_latency = registry.rolling("serve.query.latency_s")

    @property
    def index(self) -> ServeIndex:
        """The live snapshot (readers must capture it once per query)."""
        return self._index

    def _affordable_names(self, index: ServeIndex):
        """Per-cell affordable-plan name lists, cached per snapshot.

        Only 2**n_plans distinct lists exist, so cells share them; the
        cache keys on the snapshot object, which is immutable.
        """
        cached = self._afford_cache
        if cached is not None and cached[0] is index:
            return cached[1]
        names = [plan.name for plan in index.plans]
        weights = 1 << np.arange(len(names))
        masks = index.affordable.astype(np.int64) @ weights
        by_mask = [
            [name for j, name in enumerate(names) if mask >> j & 1]
            for mask in range(1 << len(names))
        ]
        per_cell = [by_mask[mask] for mask in masks.tolist()]
        self._afford_cache = (index, per_cell)
        return per_cell

    @property
    def epoch(self) -> int:
        return self._index.epoch

    # -- point queries -----------------------------------------------------

    def point_by_id(self, location_ids) -> Dict:
        """Vectorized per-location answers for a batch of location ids.

        Columnar response (one list per field, aligned with the request
        order) — the shape the JSON-lines server sends on the wire, so a
        256-id batch costs one Python round trip, not 256.
        """
        start = time.perf_counter()
        index = self._index
        try:
            rows = index.store.rows_for_location_ids(location_ids)
        except Exception:
            self._errors.inc()
            raise
        store = index.store
        cells = store.row_cell[rows]
        ranks = store.rank_in_cell[rows]
        tokens = store.cell_tokens
        affordable_names = self._affordable_names(index)
        cell_list = cells.tolist()
        answer = {
            "epoch": index.epoch,
            "scenario_id": index.scenario_id,
            "location_id": store.location_id[rows].tolist(),
            "cell": [tokens[c] for c in cell_list],
            "county_id": store.county_id[rows].tolist(),
            "served": (ranks < index.per_cell_cap).tolist(),
            "rank_in_cell": ranks.tolist(),
            "cell_locations": index.cell_counts[cells].tolist(),
            "per_cell_cap": index.per_cell_cap,
            "cell_fully_served": index.fully_served[cells].tolist(),
            "required_oversubscription": index.required_oversub[
                cells
            ].tolist(),
            "affordable_plans": [affordable_names[c] for c in cell_list],
        }
        n = len(rows)
        self._queries.inc(n)
        self._points.inc(n)
        elapsed = time.perf_counter() - start
        self._latency.observe(elapsed)
        self._rolling_latency.observe(elapsed)
        return answer

    def point_one(self, location_id: int) -> Dict:
        """Single-location convenience wrapper around :meth:`point_by_id`."""
        batch = self.point_by_id([location_id])
        return {
            key: (value[0] if isinstance(value, list) else value)
            for key, value in batch.items()
        }

    def point_by_latlon(self, lat_deg: float, lon_deg: float) -> Dict:
        """Cell-level answer for the cell containing a point.

        A point outside every occupied cell gets ``in_dataset: False`` —
        no un(der)served demand there, so the batch pipeline has nothing
        to say about it.
        """
        key = self._grid.cell_for_many(
            np.array([lat_deg]), np.array([lon_deg])
        )[0]
        return self.cell_answer(f"{int(key):015x}")

    # -- aggregate queries -------------------------------------------------

    def cell_answer(self, token: str) -> Dict:
        """Per-cell aggregate for one packed cell-key token."""
        with obs.span("serve.query", kind="cell"):
            index = self._index
            self._queries.inc()
            cell = int(index.store.cell_index_for_keys(
                np.array([int(token, 16)], dtype=np.uint64)
            )[0])
            if cell < 0:
                return {
                    "epoch": index.epoch,
                    "scenario_id": index.scenario_id,
                    "cell": token,
                    "in_dataset": False,
                }
            plan_names = [plan.name for plan in index.plans]
            return {
                "epoch": index.epoch,
                "scenario_id": index.scenario_id,
                "cell": token,
                "in_dataset": True,
                "county_id": int(index.cell_county[cell]),
                "locations": int(index.cell_counts[cell]),
                "served_locations": int(index.served_count[cell]),
                "per_cell_cap": index.per_cell_cap,
                "fully_served": bool(index.fully_served[cell]),
                "required_oversubscription": float(
                    index.required_oversub[cell]
                ),
                "affordable_plans": [
                    plan_names[j]
                    for j in np.flatnonzero(index.affordable[cell])
                ],
            }

    def county_answer(self, county_id: int) -> Dict:
        """Aggregate over every cell of one county."""
        with obs.span("serve.query", kind="county"):
            index = self._index
            self._queries.inc()
            if county_id not in index.county_monthly_income:
                return {
                    "epoch": index.epoch,
                    "scenario_id": index.scenario_id,
                    "county_id": county_id,
                    "in_dataset": False,
                }
            cells = index.county_cells.get(
                county_id, np.empty(0, dtype=np.int64)
            )
            income = index.county_monthly_income[county_id]
            plan_names = [plan.name for plan in index.plans]
            affordable = [
                plan_names[j]
                for j, plan in enumerate(index.plans)
                if not (
                    plan.monthly_cost_usd
                    > index.params.income_share * income
                )
            ]
            return {
                "epoch": index.epoch,
                "scenario_id": index.scenario_id,
                "county_id": county_id,
                "in_dataset": True,
                "cells": int(len(cells)),
                "locations": int(index.cell_counts[cells].sum()),
                "served_locations": int(index.served_count[cells].sum()),
                "fully_served_cells": int(
                    np.count_nonzero(index.fully_served[cells])
                ),
                "affordable_plans": affordable,
            }

    def tiles_geojson(
        self, tile_resolution: int = DEFAULT_TILE_RESOLUTION
    ) -> Dict:
        """Choropleth-ready GeoJSON tile aggregates at one epoch."""
        with obs.span("serve.query", kind="tiles"):
            self._queries.inc()
            return tiles_to_geojson(self._index, tile_resolution)

    def stats(self) -> Dict:
        """Service-level summary of the live snapshot."""
        index = self._index
        return {
            "epoch": index.epoch,
            "scenario_id": index.scenario_id,
            "locations": len(index),
            "cells": index.n_cells,
            "shards": len(index.store.shards),
            "per_cell_cap": index.per_cell_cap,
            "locations_served": int(index.served_count.sum()),
            "cells_fully_served": int(
                np.count_nonzero(index.fully_served)
            ),
            "dataset_fingerprint": index.dataset_fingerprint,
        }

    # -- scenario changes --------------------------------------------------

    async def update_params(self, params: ScenarioParams) -> Dict:
        """Rebuild the scenario layer shard by shard, then swap epochs.

        Yields to the event loop between shards so concurrent queries keep
        flowing; they read the old snapshot until the single atomic swap
        at the end. Serialized by a lock so updates never interleave.
        """
        async with self._update_lock:
            index = self._index
            with obs.span(
                "serve.index.refresh",
                scenario=params.scenario_id,
                shards=len(index.store.shards),
            ):
                served = np.empty(index.n_cells, dtype=np.int64)
                fully = np.empty(index.n_cells, dtype=bool)
                affordable = np.empty(
                    (index.n_cells, len(index.plans)), dtype=bool
                )
                for shard in index.store.shards:
                    s, f, a = index.scenario_slice(
                        params, shard.cell_start, shard.cell_stop
                    )
                    served[shard.cell_start : shard.cell_stop] = s
                    fully[shard.cell_start : shard.cell_stop] = f
                    affordable[shard.cell_start : shard.cell_stop] = a
                    await asyncio.sleep(0)
                self._index = index.with_scenario(
                    params, served, fully, affordable
                )
            obs.registry().counter("serve.epoch_swaps").inc()
            return {
                "epoch": self._index.epoch,
                "scenario_id": self._index.scenario_id,
            }
