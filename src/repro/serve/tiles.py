"""Choropleth tile aggregates: serving answers rolled up to coarse hexes.

A frontend map cannot draw 21k resolution-5 cells per viewport; it wants
a few hundred coarser tiles with served fractions. Tiles are the cells of
a coarser :class:`HexGrid` resolution; each fine cell is assigned to the
tile containing its center, and the per-cell arrays of a
:class:`~repro.serve.index.ServeIndex` are summed per tile — so tile
numbers are exact aggregates of batch-pipeline answers, not estimates.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import obs
from repro.errors import ServeError
from repro.geo.hexgrid import CellId, HexGrid
from repro.serve.index import ServeIndex
from repro.viz.geojson import _collection, _feature

#: Resolution-3 tiles are ~12.4x the area of the resolution-5 service
#: cells — a national map lands around 2k tiles.
DEFAULT_TILE_RESOLUTION = 3


def tile_aggregates(
    index: ServeIndex, tile_resolution: int = DEFAULT_TILE_RESOLUTION
) -> List[Dict]:
    """Per-tile aggregate rows, sorted by tile token.

    Each row sums the index's per-cell layers over the fine cells whose
    centers fall in the tile: total and served locations, fully served
    cell counts, and the tile's maximum required oversubscription.
    """
    if tile_resolution >= index.grid_resolution:
        raise ServeError(
            f"tile resolution {tile_resolution} must be coarser than the "
            f"grid resolution {index.grid_resolution}"
        )
    with obs.span(
        "serve.tiles", cells=index.n_cells, resolution=tile_resolution
    ) as span:
        fine = HexGrid(index.grid_resolution)
        coarse = HexGrid(tile_resolution)
        if index.n_cells == 0:
            return []
        lat, lon = fine.centers_many(index.store.unique_keys)
        tile_keys = coarse.cell_for_many(lat, lon)
        unique_tiles, inverse = np.unique(tile_keys, return_inverse=True)
        n_tiles = len(unique_tiles)
        locations = np.bincount(
            inverse, weights=index.cell_counts, minlength=n_tiles
        ).astype(np.int64)
        served = np.bincount(
            inverse, weights=index.served_count, minlength=n_tiles
        ).astype(np.int64)
        cells = np.bincount(inverse, minlength=n_tiles)
        fully = np.bincount(
            inverse, weights=index.fully_served, minlength=n_tiles
        ).astype(np.int64)
        span.set(tiles=n_tiles)
        rows = []
        for t in range(n_tiles):
            in_tile = inverse == t
            rows.append(
                {
                    "tile": f"{int(unique_tiles[t]):015x}",
                    "cells": int(cells[t]),
                    "cells_fully_served": int(fully[t]),
                    "locations": int(locations[t]),
                    "locations_served": int(served[t]),
                    "served_fraction": (
                        int(served[t]) / int(locations[t])
                        if locations[t]
                        else 1.0
                    ),
                    "max_required_oversubscription": float(
                        index.required_oversub[in_tile].max()
                    ),
                }
            )
        return rows


def tiles_to_geojson(
    index: ServeIndex, tile_resolution: int = DEFAULT_TILE_RESOLUTION
) -> Dict:
    """Tile aggregates as a GeoJSON FeatureCollection of hex polygons."""
    coarse = HexGrid(tile_resolution)
    features = []
    for row in tile_aggregates(index, tile_resolution):
        cell = CellId.from_token(row["tile"])
        ring = [
            [vertex.lon_deg, vertex.lat_deg]
            for vertex in coarse.cell_polygon(cell)
        ]
        ring.append(ring[0])  # close the ring per the GeoJSON spec
        properties = dict(row)
        properties["epoch"] = index.epoch
        properties["scenario_id"] = index.scenario_id
        features.append(
            _feature({"type": "Polygon", "coordinates": [ring]}, properties)
        )
    return _collection(features)
