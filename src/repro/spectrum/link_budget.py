"""Link-budget machinery behind the ~4.5 b/Hz spectral-efficiency figure.

The paper adopts ~4.5 bits/Hz from Rozenvasser & Shulakova's estimate of
Starlink downlink efficiency. This module lets the library *derive* a
figure in that neighbourhood from first principles rather than trusting a
constant: a Ku-band budget with representative Starlink EIRP density and UT
G/T produces an SNR whose DVB-S2X operating point lands near 4.5 b/Hz.
The capacity model takes the efficiency as a parameter, so the ablation
benches can sweep it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CapacityModelError
from repro.units import BOLTZMANN_DBW_PER_K_HZ, SPEED_OF_LIGHT_KM_S, db, from_db

#: DVB-S2X MODCOD operating points: (minimum Es/N0 dB, efficiency b/Hz).
#: A condensed subset of the standard's Table 20a, enough to map SNR to a
#: realistic (non-Shannon) efficiency.
DVB_S2X_MODCODS: Tuple[Tuple[float, float], ...] = (
    (-2.85, 0.434),
    (0.22, 0.870),
    (3.10, 1.322),
    (5.18, 1.766),
    (6.20, 1.981),
    (7.91, 2.479),
    (9.35, 2.967),
    (10.69, 3.300),
    (12.73, 3.952),
    (13.64, 4.294),
    (14.28, 4.397),
    (15.69, 4.937),
    (16.05, 5.065),
    (17.59, 5.594),
    (18.59, 5.901),
    (19.57, 6.226),
)


def free_space_path_loss_db(distance_km: float, frequency_ghz: float) -> float:
    """Free-space path loss, dB."""
    if distance_km <= 0.0 or frequency_ghz <= 0.0:
        raise CapacityModelError(
            f"FSPL needs positive distance/frequency: {distance_km!r} km, "
            f"{frequency_ghz!r} GHz"
        )
    wavelength_km = SPEED_OF_LIGHT_KM_S / (frequency_ghz * 1e9)
    return db((4.0 * math.pi * distance_km / wavelength_km) ** 2)


def shannon_spectral_efficiency(snr_db: float) -> float:
    """Shannon-limit spectral efficiency log2(1 + SNR), b/Hz."""
    return math.log2(1.0 + from_db(snr_db))


def spectral_efficiency_from_snr_db(snr_db: float) -> float:
    """Highest DVB-S2X MODCOD efficiency supported at ``snr_db``.

    Returns 0.0 below the most robust MODCOD's threshold (link down).
    """
    best = 0.0
    for threshold_db, efficiency in DVB_S2X_MODCODS:
        if snr_db >= threshold_db:
            best = efficiency
    return best


@dataclass(frozen=True)
class LinkBudget:
    """A satellite downlink budget.

    Defaults are representative of a Starlink Ku-band user downlink at a
    mid-elevation slant range: ~36.7 dBW beam EIRP over a 250 MHz channel
    (Schedule S order of magnitude), a UT G/T near 8.5 dB/K, and ~3.3 dB of
    atmospheric, pointing, and implementation margin. These produce a C/N
    near 14.6 dB and a DVB-S2X operating point of ~4.4 b/Hz (Shannon limit
    ~4.9), bracketing the ~4.5 b/Hz figure the paper adopts from the
    literature.
    """

    eirp_dbw: float = 36.7
    frequency_ghz: float = 11.7
    bandwidth_mhz: float = 250.0
    slant_range_km: float = 800.0
    gain_over_temperature_db_k: float = 8.5
    losses_db: float = 3.3

    def __post_init__(self) -> None:
        if self.bandwidth_mhz <= 0.0:
            raise CapacityModelError(
                f"bandwidth must be positive: {self.bandwidth_mhz!r}"
            )

    def path_loss_db(self) -> float:
        return free_space_path_loss_db(self.slant_range_km, self.frequency_ghz)

    def carrier_to_noise_db(self) -> float:
        """C/N over the channel bandwidth, dB."""
        bandwidth_db_hz = db(self.bandwidth_mhz * 1e6)
        return (
            self.eirp_dbw
            - self.path_loss_db()
            - self.losses_db
            + self.gain_over_temperature_db_k
            - BOLTZMANN_DBW_PER_K_HZ
            - bandwidth_db_hz
        )

    def spectral_efficiency(self) -> float:
        """Achievable DVB-S2X spectral efficiency, b/Hz."""
        return spectral_efficiency_from_snr_db(self.carrier_to_noise_db())

    def shannon_efficiency(self) -> float:
        """Shannon-limit efficiency at this budget's SNR, b/Hz."""
        return shannon_spectral_efficiency(self.carrier_to_noise_db())

    def channel_capacity_mbps(self) -> float:
        """Achievable throughput over the channel, Mbps."""
        return self.spectral_efficiency() * self.bandwidth_mhz
