"""Spectrum and beam substrate: Schedule S bands, link budgets, spot beams.

Transcribes the public inputs behind the paper's Table 1 — Starlink's FCC
Schedule S downlink band allocations and the ~4.5 b/Hz spectral-efficiency
estimate — and derives per-cell and per-beam capacity from them.
"""

from repro.spectrum.bands import (
    BandAllocation,
    SCHEDULE_S_BANDS,
    gateway_downlink_spectrum_mhz,
    ut_downlink_beams,
    ut_downlink_spectrum_mhz,
)
from repro.spectrum.beams import BeamPlan, STARLINK_BEAM_PLAN
from repro.spectrum.interference import InterferenceModel
from repro.spectrum.link_budget import (
    LinkBudget,
    free_space_path_loss_db,
    shannon_spectral_efficiency,
    spectral_efficiency_from_snr_db,
)
from repro.spectrum.regulatory import (
    FCC_FIXED_WIRELESS_MAX_OVERSUBSCRIPTION,
    RELIABLE_BROADBAND_DOWNLINK_MBPS,
    RELIABLE_BROADBAND_UPLINK_MBPS,
)

__all__ = [
    "BandAllocation",
    "SCHEDULE_S_BANDS",
    "gateway_downlink_spectrum_mhz",
    "ut_downlink_beams",
    "ut_downlink_spectrum_mhz",
    "BeamPlan",
    "STARLINK_BEAM_PLAN",
    "InterferenceModel",
    "LinkBudget",
    "free_space_path_loss_db",
    "shannon_spectral_efficiency",
    "spectral_efficiency_from_snr_db",
    "FCC_FIXED_WIRELESS_MAX_OVERSUBSCRIPTION",
    "RELIABLE_BROADBAND_DOWNLINK_MBPS",
    "RELIABLE_BROADBAND_UPLINK_MBPS",
]
