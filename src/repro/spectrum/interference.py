"""Spectrum reuse and beam-overlap constraints.

The paper notes that beamforming flexibility "is ultimately limited by
physical and regulatory constraints on spectrum reuse and beam overlap
(e.g., FCC polarization restrictions)". This module makes that sentence
quantitative:

* co-frequency, co-polarization beams cannot overlap on the ground, so
  within any interference neighborhood the number of concurrent beams is
  capped by the count of **orthogonal resources** — frequency channels
  times polarizations;
* that cap yields a *physics ceiling* on per-cell capacity that no amount
  of constellation densification can beat (the structural reason P2's
  peak cell cannot be rescued by more satellites), and a headroom check
  for any :class:`~repro.spectrum.beams.BeamPlan`.

With Starlink-like numbers (3850 MHz over 250 MHz channels, dual
polarization -> 30 orthogonal resources), the ceiling on one cell is
~33.75 Gbps — about 2x the 17.3 Gbps the FCC-filed 4-beam configuration
delivers. The filing, not physics, is the binding constraint; the
ablation benches sweep this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import CapacityModelError
from repro.spectrum.beams import BeamPlan


@dataclass(frozen=True)
class InterferenceModel:
    """Orthogonal-resource accounting for overlapping spot beams."""

    total_spectrum_mhz: float = 3850.0
    channel_mhz: float = 250.0
    polarizations: int = 2
    #: Hex rings around a cell inside which co-resource reuse is barred.
    exclusion_rings: int = 1
    spectral_efficiency_bps_hz: float = 4.5

    def __post_init__(self) -> None:
        if self.total_spectrum_mhz <= 0.0 or self.channel_mhz <= 0.0:
            raise CapacityModelError("spectrum and channel width must be positive")
        if self.channel_mhz > self.total_spectrum_mhz:
            raise CapacityModelError("channel wider than the allocation")
        if self.polarizations not in (1, 2):
            raise CapacityModelError(
                f"polarizations must be 1 or 2: {self.polarizations!r}"
            )
        if self.exclusion_rings < 0:
            raise CapacityModelError(
                f"exclusion rings must be >= 0: {self.exclusion_rings!r}"
            )

    @property
    def channels(self) -> int:
        """Frequency channels in the allocation."""
        return int(self.total_spectrum_mhz // self.channel_mhz)

    @property
    def orthogonal_resources(self) -> int:
        """Concurrent non-interfering beams within one neighborhood."""
        return self.channels * self.polarizations

    @property
    def exclusion_area_cells(self) -> int:
        """Cells in the interference neighborhood (hex disk)."""
        k = self.exclusion_rings
        return 1 + 3 * k * (k + 1)

    def cell_capacity_ceiling_mbps(self) -> float:
        """Physics ceiling on one cell's concurrent downlink capacity.

        Every orthogonal resource may point one beam at the cell (from any
        satellite — densification cannot add more), each carrying one
        channel's worth of capacity.
        """
        return (
            self.orthogonal_resources
            * self.channel_mhz
            * self.spectral_efficiency_bps_hz
        )

    def neighborhood_capacity_density_mbps(self) -> float:
        """Average concurrent capacity per cell across a neighborhood.

        The resources are shared by every cell in the exclusion disk, so
        sustained *area* capacity is the ceiling divided by the disk size.
        """
        return self.cell_capacity_ceiling_mbps() / self.exclusion_area_cells

    def min_oversubscription_possible(self, peak_cell_locations: int) -> float:
        """Best-case peak-cell oversubscription under the physics ceiling.

        No constellation, however dense, can do better than this — the
        quantitative form of "densification cannot rescue the peak cell".
        """
        if peak_cell_locations <= 0:
            raise CapacityModelError(
                f"peak cell must have locations: {peak_cell_locations!r}"
            )
        demand = peak_cell_locations * 100.0
        return demand / self.cell_capacity_ceiling_mbps()

    def validate_beam_plan(self, plan: BeamPlan) -> Dict[str, float]:
        """Check a beam plan against the reuse budget.

        Raises when the plan's concurrent beams exceed the orthogonal
        resources; returns headroom statistics otherwise.
        """
        if plan.beams_per_satellite > self.orthogonal_resources:
            raise CapacityModelError(
                f"{plan.beams_per_satellite} beams exceed the "
                f"{self.orthogonal_resources} orthogonal resources in one "
                "neighborhood"
            )
        ceiling = self.cell_capacity_ceiling_mbps()
        return {
            "orthogonal_resources": self.orthogonal_resources,
            "beams_per_satellite": plan.beams_per_satellite,
            "resource_headroom": (
                self.orthogonal_resources - plan.beams_per_satellite
            ),
            "cell_capacity_ceiling_mbps": ceiling,
            "filed_cell_capacity_mbps": plan.cell_capacity_mbps,
            "filing_utilization": plan.cell_capacity_mbps / ceiling,
        }
