"""Uplink spectrum and beam model (extension beyond the paper).

The paper's Table 1 models the downlink only; the FCC's reliable-broadband
definition also requires 20 Mbps *up*. Starlink's Schedule S authorizes a
single 500 MHz Ku band (14.0-14.5 GHz) for UT uplink — an eighth of the
downlink allocation — and UT uplink runs at lower spectral efficiency
(small dish, limited EIRP; ~2.5 b/Hz is a generous operating point).
Applying the paper's own peak-demand-density logic to this budget shows
the uplink binds *harder* than the downlink: see
:mod:`repro.core.uplink`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import CapacityModelError
from repro.spectrum.bands import BandAllocation, BandUsage

#: Schedule S uplink allocations (UT = user terminal to satellite;
#: GW = gateway to satellite).
SCHEDULE_S_UPLINK_BANDS: Tuple[BandAllocation, ...] = (
    BandAllocation("Ku 14.0-14.5 (UL)", 14.0, 14.5, 8, BandUsage.USER_TERMINAL),
    BandAllocation("Ka 27.5-29.1 (UL)", 27.5, 29.1, 4, BandUsage.GATEWAY),
    BandAllocation("Ka 29.5-30.0 (UL)", 29.5, 30.0, 4, BandUsage.GATEWAY),
    BandAllocation("E 81-86 (UL)", 81.0, 86.0, 4, BandUsage.GATEWAY),
)

#: Spectral efficiency of the UT uplink, b/Hz. UTs transmit with far less
#: EIRP than the satellite downlink, so this sits well below the 4.5 b/Hz
#: downlink figure.
DEFAULT_UPLINK_EFFICIENCY_BPS_HZ = 2.5


def ut_uplink_spectrum_mhz() -> float:
    """Spectrum usable for UT uplink (500 MHz)."""
    return sum(
        b.width_mhz
        for b in SCHEDULE_S_UPLINK_BANDS
        if b.serves_user_terminals
    )


def ut_uplink_beams() -> int:
    """Receive beams available for UT uplink."""
    return sum(
        b.beams for b in SCHEDULE_S_UPLINK_BANDS if b.serves_user_terminals
    )


@dataclass(frozen=True)
class UplinkBeamPlan:
    """Per-cell uplink capacity, mirroring the downlink BeamPlan."""

    ut_spectrum_mhz: float = 500.0
    spectral_efficiency_bps_hz: float = DEFAULT_UPLINK_EFFICIENCY_BPS_HZ

    def __post_init__(self) -> None:
        if self.ut_spectrum_mhz <= 0.0 or self.spectral_efficiency_bps_hz <= 0.0:
            raise CapacityModelError(
                "uplink spectrum and efficiency must be positive"
            )

    @property
    def cell_capacity_mbps(self) -> float:
        """Max uplink capacity receivable from one cell (~1.25 Gbps)."""
        return self.ut_spectrum_mhz * self.spectral_efficiency_bps_hz


def starlink_uplink_plan(
    spectral_efficiency_bps_hz: float = DEFAULT_UPLINK_EFFICIENCY_BPS_HZ,
) -> UplinkBeamPlan:
    """Uplink plan built from the Schedule S uplink table."""
    return UplinkBeamPlan(
        ut_spectrum_mhz=ut_uplink_spectrum_mhz(),
        spectral_efficiency_bps_hz=spectral_efficiency_bps_hz,
    )
