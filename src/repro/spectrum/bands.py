"""Starlink downlink band allocations (FCC Schedule S, paper Table 1).

Each row transcribes one band from the paper's Table 1, which itself comes
from Starlink's Schedule S filing SAT-AMD-20210818-00105. "UT" bands carry
traffic to user terminals; "GW" bands to gateways; some Ka-band beams are
flexibly assigned to either.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CapacityModelError


class BandUsage(enum.Enum):
    """What traffic a downlink band may carry."""

    USER_TERMINAL = "downlink to UTs"
    FLEXIBLE = "downlink to UTs or gateways"
    GATEWAY = "downlink to gateways"


@dataclass(frozen=True)
class BandAllocation:
    """One downlink band: frequency range, beam count, permitted usage."""

    name: str
    low_ghz: float
    high_ghz: float
    beams: int
    usage: BandUsage

    def __post_init__(self) -> None:
        if self.high_ghz <= self.low_ghz:
            raise CapacityModelError(
                f"band {self.name}: high {self.high_ghz} <= low {self.low_ghz}"
            )
        if self.beams <= 0:
            raise CapacityModelError(f"band {self.name}: no beams")

    @property
    def width_mhz(self) -> float:
        """Band width in MHz."""
        return (self.high_ghz - self.low_ghz) * 1000.0

    @property
    def serves_user_terminals(self) -> bool:
        return self.usage in (BandUsage.USER_TERMINAL, BandUsage.FLEXIBLE)


#: Paper Table 1 rows (Schedule S downlink allocations).
SCHEDULE_S_BANDS: Tuple[BandAllocation, ...] = (
    BandAllocation("Ku 10.7-12.75", 10.7, 12.75, 4, BandUsage.USER_TERMINAL),
    BandAllocation("Ka 19.7-20.2", 19.7, 20.2, 8, BandUsage.USER_TERMINAL),
    BandAllocation("Ka 17.8-18.6", 17.8, 18.6, 8, BandUsage.FLEXIBLE),
    BandAllocation("Ka 18.8-19.3", 18.8, 19.3, 4, BandUsage.FLEXIBLE),
    BandAllocation("E 71-76", 71.0, 76.0, 4, BandUsage.GATEWAY),
)


def ut_downlink_spectrum_mhz() -> float:
    """Total spectrum usable for UT downlink (paper: 3850 MHz)."""
    return sum(b.width_mhz for b in SCHEDULE_S_BANDS if b.serves_user_terminals)


def ut_downlink_beams() -> int:
    """Beams usable for UT downlink (paper: 24 of 28)."""
    return sum(b.beams for b in SCHEDULE_S_BANDS if b.serves_user_terminals)


def total_downlink_beams() -> int:
    """All downlink beams including gateway-only (paper: 28)."""
    return sum(b.beams for b in SCHEDULE_S_BANDS)


def total_downlink_spectrum_mhz() -> float:
    """All downlink spectrum including gateway-only (paper: 8850 MHz)."""
    return sum(b.width_mhz for b in SCHEDULE_S_BANDS)


def gateway_downlink_spectrum_mhz() -> float:
    """Spectrum usable only for gateway downlink (E band, 5000 MHz)."""
    return sum(
        b.width_mhz for b in SCHEDULE_S_BANDS if b.usage is BandUsage.GATEWAY
    )
