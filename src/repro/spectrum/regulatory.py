"""US regulatory constants the paper's analysis hinges on.

* The FCC "reliable broadband" service definition (100/20 Mbps), which
  determines which locations count as served.
* The FCC's 20:1 maximum oversubscription rule for terrestrial unlicensed
  fixed-wireless providers, which the paper adopts as the "acceptable"
  oversubscription benchmark for satellite service.
"""

from __future__ import annotations

#: FCC "reliable broadband" downlink requirement, Mbps.
RELIABLE_BROADBAND_DOWNLINK_MBPS = 100.0

#: FCC "reliable broadband" uplink requirement, Mbps.
RELIABLE_BROADBAND_UPLINK_MBPS = 20.0

#: FCC cap on oversubscription for terrestrial unlicensed fixed wireless.
FCC_FIXED_WIRELESS_MAX_OVERSUBSCRIPTION = 20.0


def is_reliable_broadband(downlink_mbps: float, uplink_mbps: float) -> bool:
    """Whether an offering meets the federal reliable-broadband definition."""
    return (
        downlink_mbps >= RELIABLE_BROADBAND_DOWNLINK_MBPS
        and uplink_mbps >= RELIABLE_BROADBAND_UPLINK_MBPS
    )
