"""Spot-beam model: per-beam capacity, per-cell beam limits, beamspread.

The paper's operational model (Section 2.2/3.0.2):

* a satellite forms a fixed number of steerable spot beams (24 usable for
  UT downlink);
* FCC filings indicate **4 beams** serve one cell at the full 17.3 Gbps,
  so one beam carries a quarter of the UT spectrum (~962.5 MHz, ~4.33 Gbps
  at 4.5 b/Hz) and 4 beams per cell is the per-cell maximum;
* **beamspread** ``s`` lets one beam cover ``s`` cells, dividing its
  capacity equally among them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityModelError
from repro.spectrum.bands import ut_downlink_beams, ut_downlink_spectrum_mhz

#: Spectral efficiency the paper adopts (Rozenvasser & Shulakova 2023), b/Hz.
DEFAULT_SPECTRAL_EFFICIENCY_BPS_HZ = 4.5

#: Beams required to deliver the full per-cell capacity (FCC filings).
BEAMS_PER_CELL_AT_FULL_CAPACITY = 4


@dataclass(frozen=True)
class BeamPlan:
    """A satellite's beam configuration and the capacities it implies."""

    beams_per_satellite: int = 24
    max_beams_per_cell: int = BEAMS_PER_CELL_AT_FULL_CAPACITY
    ut_spectrum_mhz: float = 3850.0
    spectral_efficiency_bps_hz: float = DEFAULT_SPECTRAL_EFFICIENCY_BPS_HZ

    def __post_init__(self) -> None:
        if self.beams_per_satellite <= 0:
            raise CapacityModelError("beams_per_satellite must be positive")
        if not 0 < self.max_beams_per_cell <= self.beams_per_satellite:
            raise CapacityModelError(
                f"max_beams_per_cell {self.max_beams_per_cell} out of range"
            )
        if self.ut_spectrum_mhz <= 0.0 or self.spectral_efficiency_bps_hz <= 0.0:
            raise CapacityModelError("spectrum and efficiency must be positive")

    @property
    def cell_capacity_mbps(self) -> float:
        """Max downlink capacity deliverable to one cell (paper: ~17.3 Gbps)."""
        return self.ut_spectrum_mhz * self.spectral_efficiency_bps_hz

    @property
    def beam_capacity_mbps(self) -> float:
        """Capacity of a single beam (paper: ~4.33 Gbps)."""
        return self.cell_capacity_mbps / self.max_beams_per_cell

    def cell_capacity_with_beamspread_mbps(self, beamspread: float) -> float:
        """Per-cell capacity when each beam is spread over ``beamspread`` cells."""
        if beamspread < 1.0:
            raise CapacityModelError(f"beamspread must be >= 1: {beamspread!r}")
        return self.cell_capacity_mbps / beamspread

    def beams_for_demand(self, provisioned_demand_mbps: float) -> int:
        """Beams needed to carry ``provisioned_demand_mbps`` to one cell.

        Raises if the demand exceeds what ``max_beams_per_cell`` beams can
        deliver — callers decide whether to oversubscribe harder or to
        leave locations unserved.
        """
        if provisioned_demand_mbps < 0.0:
            raise CapacityModelError(
                f"negative demand: {provisioned_demand_mbps!r}"
            )
        if provisioned_demand_mbps == 0.0:
            return 0
        # The relative epsilon keeps an exactly-k-beam demand computed
        # through floating point (e.g. peak * 100 / oversub) from rounding
        # up to k + 1.
        beams = math.ceil(
            provisioned_demand_mbps / self.beam_capacity_mbps * (1.0 - 1e-9)
        )
        if beams > self.max_beams_per_cell:
            raise CapacityModelError(
                f"demand {provisioned_demand_mbps:.0f} Mbps needs {beams} "
                f"beams; cells get at most {self.max_beams_per_cell}"
            )
        return beams

    def cells_per_satellite(self, peak_cell_beams: int, beamspread: float) -> float:
        """Cells one satellite covers while pinning beams on the peak cell.

        The paper's lower-bound construction: ``peak_cell_beams`` beams are
        dedicated to the binding cell; every remaining beam covers
        ``beamspread`` cells. With the defaults and 4 peak beams this is
        the paper's ``1 + 20 * s``.
        """
        if not 0 < peak_cell_beams <= self.max_beams_per_cell:
            raise CapacityModelError(
                f"peak_cell_beams {peak_cell_beams} out of "
                f"(0, {self.max_beams_per_cell}]"
            )
        if beamspread < 1.0:
            raise CapacityModelError(f"beamspread must be >= 1: {beamspread!r}")
        free_beams = self.beams_per_satellite - peak_cell_beams
        return 1.0 + free_beams * beamspread


def starlink_beam_plan(
    spectral_efficiency_bps_hz: float = DEFAULT_SPECTRAL_EFFICIENCY_BPS_HZ,
) -> BeamPlan:
    """Beam plan built from the Schedule S band table."""
    return BeamPlan(
        beams_per_satellite=ut_downlink_beams(),
        max_beams_per_cell=BEAMS_PER_CELL_AT_FULL_CAPACITY,
        ut_spectrum_mhz=ut_downlink_spectrum_mhz(),
        spectral_efficiency_bps_hz=spectral_efficiency_bps_hz,
    )


#: The canonical Starlink beam plan used throughout the library.
STARLINK_BEAM_PLAN = starlink_beam_plan()
