"""Geospatial substrate: coordinates, projections, hex grid, polygons.

This package replaces the paper's use of the Uber H3 geospatial indexing
system (and geopandas) with a from-scratch hexagonal discrete global grid
built on an equal-area cylindrical projection. See ``DESIGN.md`` section 2
for why this substitution preserves the paper's results.
"""

from repro.geo.coords import (
    LatLon,
    bearing_deg,
    destination,
    haversine_km,
    normalize_lon,
    validate_latlon,
)
from repro.geo.hexgrid import (
    CellId,
    HexGrid,
    H3_MEAN_HEX_AREA_KM2,
    pack_cell_keys,
    unpack_cell_keys,
)
from repro.geo.polygon import Polygon
from repro.geo.projection import EqualAreaProjection, normalize_lon_many
from repro.geo.us_boundary import conus_polygon, CONUS_LAND_AREA_KM2

__all__ = [
    "LatLon",
    "bearing_deg",
    "destination",
    "haversine_km",
    "normalize_lon",
    "validate_latlon",
    "CellId",
    "HexGrid",
    "H3_MEAN_HEX_AREA_KM2",
    "pack_cell_keys",
    "unpack_cell_keys",
    "Polygon",
    "EqualAreaProjection",
    "normalize_lon_many",
    "conus_polygon",
    "CONUS_LAND_AREA_KM2",
]
