"""Hexagonal discrete global grid (the library's H3 stand-in).

Starlink's terrestrial service cells are believed to follow the Uber H3
geospatial index (the paper cites prior work making that identification).
H3 itself is an icosahedral aperture-7 grid; re-implementing it bit-exactly
is unnecessary for this reproduction because the capacity model consumes
only three properties of the grid:

1. every cell has (approximately) the same spherical area,
2. a point maps to exactly one cell,
3. cells have six neighbors that tile the plane (used for beamspread groups).

This module provides all three with a flat-top hexagonal lattice laid out on
an equal-area cylindrical projection. Cell areas are *exactly* equal (the
projection is area-preserving), and the per-resolution mean cell area is
taken from H3's published table so that "resolution 5" here means the same
~253 km^2 cells the paper's Starlink model uses.

Cells are addressed by axial coordinates ``(q, r)`` packed together with the
resolution into a 64-bit token, mirroring how H3 indexes round-trip through
CSV files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geo.coords import LatLon
from repro.geo.projection import EqualAreaProjection

#: Mean hexagon area per H3 resolution, km^2 (source: H3 documentation,
#: "Table of average cell areas"). Index = resolution.
H3_MEAN_HEX_AREA_KM2: Tuple[float, ...] = (
    4357449.416078392,
    609788.441794133,
    86801.780398997,
    12393.434655088,
    1770.347654491,
    252.903858182,
    36.129062164,
    5.161293360,
    0.737327598,
    0.105332513,
    0.015047502,
)

#: Resolution the paper's Starlink cell model uses (~253 km^2 hexes).
STARLINK_CELL_RESOLUTION = 5

_AXIAL_NEIGHBOR_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)

_COORD_BITS = 28
_COORD_BIAS = 1 << (_COORD_BITS - 1)
_COORD_MASK = (1 << _COORD_BITS) - 1


@dataclass(frozen=True, order=True)
class CellId:
    """A grid cell: resolution plus axial (q, r) lattice coordinates."""

    resolution: int
    q: int
    r: int

    def __post_init__(self) -> None:
        if not 0 <= self.resolution < len(H3_MEAN_HEX_AREA_KM2):
            raise GeometryError(f"unsupported resolution: {self.resolution!r}")
        for name, coord in (("q", self.q), ("r", self.r)):
            if not -_COORD_BIAS <= coord < _COORD_BIAS:
                raise GeometryError(f"axial coordinate {name}={coord!r} out of range")

    @property
    def token(self) -> str:
        """Hex-string token for CSV round trips (H3-index analogue)."""
        packed = (
            (self.resolution & 0xF) << (2 * _COORD_BITS)
            | ((self.q + _COORD_BIAS) & _COORD_MASK) << _COORD_BITS
            | ((self.r + _COORD_BIAS) & _COORD_MASK)
        )
        return f"{packed:015x}"

    @classmethod
    def from_token(cls, token: str) -> "CellId":
        """Inverse of :attr:`token`."""
        try:
            packed = int(token, 16)
        except ValueError as exc:
            raise GeometryError(f"malformed cell token: {token!r}") from exc
        resolution = (packed >> (2 * _COORD_BITS)) & 0xF
        q = ((packed >> _COORD_BITS) & _COORD_MASK) - _COORD_BIAS
        r = (packed & _COORD_MASK) - _COORD_BIAS
        return cls(resolution, q, r)


class HexGrid:
    """Flat-top hexagonal lattice over an equal-area projection.

    Parameters
    ----------
    resolution:
        H3-style resolution, 0 (coarsest) to 10. Resolution 5 matches the
        ~253 km^2 cells of the Starlink service-cell model.
    """

    def __init__(self, resolution: int = STARLINK_CELL_RESOLUTION):
        if not 0 <= resolution < len(H3_MEAN_HEX_AREA_KM2):
            raise GeometryError(f"unsupported resolution: {resolution!r}")
        self.resolution = resolution
        self.projection = EqualAreaProjection()
        #: Exact spherical area of every cell in this grid, km^2.
        self.cell_area_km2 = H3_MEAN_HEX_AREA_KM2[resolution]
        # Hexagon area = (3*sqrt(3)/2) * a^2 where a is the circumradius.
        self.hex_size_km = math.sqrt(2.0 * self.cell_area_km2 / (3.0 * math.sqrt(3.0)))

    # -- point <-> cell ----------------------------------------------------

    def cell_for(self, point: LatLon) -> CellId:
        """Return the cell containing ``point``."""
        x, y = self.projection.forward(point)
        q, r = self._axial_round(*self._axial_fractional(x, y))
        return CellId(self.resolution, q, r)

    def center(self, cell: CellId) -> LatLon:
        """Geographic center of ``cell``."""
        self._check_cell(cell)
        x, y = self._center_xy(cell)
        return self.projection.inverse(x, y)

    def cell_polygon(self, cell: CellId) -> List[LatLon]:
        """Six boundary vertices of ``cell`` (flat-top orientation)."""
        self._check_cell(cell)
        cx, cy = self._center_xy(cell)
        vertices = []
        for k in range(6):
            angle = math.pi / 3.0 * k
            vx = cx + self.hex_size_km * math.cos(angle)
            vy = cy + self.hex_size_km * math.sin(angle)
            vertices.append(self.projection.inverse(vx, vy))
        return vertices

    # -- lattice topology ---------------------------------------------------

    def neighbors(self, cell: CellId) -> List[CellId]:
        """The six lattice neighbors of ``cell``."""
        self._check_cell(cell)
        return [
            CellId(self.resolution, cell.q + dq, cell.r + dr)
            for dq, dr in _AXIAL_NEIGHBOR_OFFSETS
        ]

    def ring(self, cell: CellId, k: int) -> List[CellId]:
        """Cells at exactly hex-distance ``k`` from ``cell`` (k=0 -> [cell])."""
        self._check_cell(cell)
        if k < 0:
            raise GeometryError(f"ring distance must be >= 0: {k!r}")
        if k == 0:
            return [cell]
        results: List[CellId] = []
        # Walk k steps toward neighbor direction 4, then trace the ring.
        q = cell.q + _AXIAL_NEIGHBOR_OFFSETS[4][0] * k
        r = cell.r + _AXIAL_NEIGHBOR_OFFSETS[4][1] * k
        for direction in range(6):
            dq, dr = _AXIAL_NEIGHBOR_OFFSETS[direction]
            for _ in range(k):
                results.append(CellId(self.resolution, q, r))
                q += dq
                r += dr
        return results

    def disk(self, cell: CellId, k: int) -> List[CellId]:
        """All cells within hex-distance ``k`` of ``cell`` (inclusive)."""
        cells: List[CellId] = []
        for radius in range(k + 1):
            cells.extend(self.ring(cell, radius))
        return cells

    def distance(self, a: CellId, b: CellId) -> int:
        """Hex (lattice) distance between two cells of this grid."""
        self._check_cell(a)
        self._check_cell(b)
        dq = a.q - b.q
        dr = a.r - b.r
        return (abs(dq) + abs(dr) + abs(dq + dr)) // 2

    # -- enumeration ----------------------------------------------------------

    def cells_in_bbox(
        self,
        lat_min_deg: float,
        lat_max_deg: float,
        lon_min_deg: float,
        lon_max_deg: float,
    ) -> Iterator[CellId]:
        """Yield every cell whose center lies inside the bounding box.

        The box must not straddle the antimeridian (CONUS does not).
        """
        if lat_min_deg > lat_max_deg or lon_min_deg > lon_max_deg:
            raise GeometryError("bounding box min exceeds max")
        x_min, y_min = self.projection.forward(LatLon(lat_min_deg, lon_min_deg))
        x_max, y_max = self.projection.forward(LatLon(lat_max_deg, lon_max_deg))
        if x_min > x_max:
            raise GeometryError("bounding box straddles the antimeridian")
        a = self.hex_size_km
        q_min = int(math.floor(x_min / (1.5 * a))) - 1
        q_max = int(math.ceil(x_max / (1.5 * a))) + 1
        root3 = math.sqrt(3.0)
        for q in range(q_min, q_max + 1):
            r_lo = int(math.floor(y_min / (root3 * a) - q / 2.0)) - 1
            r_hi = int(math.ceil(y_max / (root3 * a) - q / 2.0)) + 1
            for r in range(r_lo, r_hi + 1):
                cx, cy = self._center_xy_qr(q, r)
                if x_min <= cx <= x_max and y_min <= cy <= y_max:
                    yield CellId(self.resolution, q, r)

    def cells_covering(self, polygon: "Polygon") -> List[CellId]:
        """Cells whose centers fall inside ``polygon`` (H3 polyfill analogue)."""
        lat_min, lat_max, lon_min, lon_max = polygon.bounds()
        return [
            cell
            for cell in self.cells_in_bbox(lat_min, lat_max, lon_min, lon_max)
            if polygon.contains(self.center(cell))
        ]

    # -- internals ------------------------------------------------------------

    def _check_cell(self, cell: CellId) -> None:
        if cell.resolution != self.resolution:
            raise GeometryError(
                f"cell resolution {cell.resolution} does not match grid "
                f"resolution {self.resolution}"
            )

    def _center_xy(self, cell: CellId) -> Tuple[float, float]:
        return self._center_xy_qr(cell.q, cell.r)

    def _center_xy_qr(self, q: int, r: int) -> Tuple[float, float]:
        a = self.hex_size_km
        x = a * 1.5 * q
        y = a * math.sqrt(3.0) * (r + q / 2.0)
        return x, y

    def _axial_fractional(self, x: float, y: float) -> Tuple[float, float]:
        a = self.hex_size_km
        qf = (2.0 / 3.0) * x / a
        rf = (-x / 3.0 + math.sqrt(3.0) / 3.0 * y) / a
        return qf, rf

    @staticmethod
    def _axial_round(qf: float, rf: float) -> Tuple[int, int]:
        # Cube-coordinate rounding (q + r + s = 0).
        sf = -qf - rf
        q = round(qf)
        r = round(rf)
        s = round(sf)
        dq = abs(q - qf)
        dr = abs(r - rf)
        ds = abs(s - sf)
        if dq > dr and dq > ds:
            q = -r - s
        elif dr > ds:
            r = -q - s
        return int(q), int(r)


# Imported at the bottom to avoid a cycle: polygon.py does not import hexgrid.
from repro.geo.polygon import Polygon  # noqa: E402  (intentional late import)
