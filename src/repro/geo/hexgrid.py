"""Hexagonal discrete global grid (the library's H3 stand-in).

Starlink's terrestrial service cells are believed to follow the Uber H3
geospatial index (the paper cites prior work making that identification).
H3 itself is an icosahedral aperture-7 grid; re-implementing it bit-exactly
is unnecessary for this reproduction because the capacity model consumes
only three properties of the grid:

1. every cell has (approximately) the same spherical area,
2. a point maps to exactly one cell,
3. cells have six neighbors that tile the plane (used for beamspread groups).

This module provides all three with a flat-top hexagonal lattice laid out on
an equal-area cylindrical projection. Cell areas are *exactly* equal (the
projection is area-preserving), and the per-resolution mean cell area is
taken from H3's published table so that "resolution 5" here means the same
~253 km^2 cells the paper's Starlink model uses.

Cells are addressed by axial coordinates ``(q, r)`` packed together with the
resolution into a 64-bit token, mirroring how H3 indexes round-trip through
CSV files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geo.coords import LatLon
from repro.geo.projection import EqualAreaProjection

#: Mean hexagon area per H3 resolution, km^2 (source: H3 documentation,
#: "Table of average cell areas"). Index = resolution.
H3_MEAN_HEX_AREA_KM2: Tuple[float, ...] = (
    4357449.416078392,
    609788.441794133,
    86801.780398997,
    12393.434655088,
    1770.347654491,
    252.903858182,
    36.129062164,
    5.161293360,
    0.737327598,
    0.105332513,
    0.015047502,
)

#: Resolution the paper's Starlink cell model uses (~253 km^2 hexes).
STARLINK_CELL_RESOLUTION = 5

_AXIAL_NEIGHBOR_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)

_COORD_BITS = 28
_COORD_BIAS = 1 << (_COORD_BITS - 1)
_COORD_MASK = (1 << _COORD_BITS) - 1


def pack_cell_keys(resolution: int, q: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Pack axial coordinate arrays into uint64 cell keys.

    The key is the integer value of :attr:`CellId.token` (the hex-string
    token is just ``f"{key:015x}"``), so packed keys, tokens, and
    :class:`CellId` objects all round-trip losslessly.
    """
    if not 0 <= resolution < len(H3_MEAN_HEX_AREA_KM2):
        raise GeometryError(f"unsupported resolution: {resolution!r}")
    q = np.asarray(q, dtype=np.int64)
    r = np.asarray(r, dtype=np.int64)
    if q.size and (
        (q < -_COORD_BIAS).any()
        or (q >= _COORD_BIAS).any()
        or (r < -_COORD_BIAS).any()
        or (r >= _COORD_BIAS).any()
    ):
        raise GeometryError("axial coordinate out of range")
    packed = (
        (np.uint64(resolution & 0xF) << np.uint64(2 * _COORD_BITS))
        | ((q + _COORD_BIAS).astype(np.uint64) << np.uint64(_COORD_BITS))
        | (r + _COORD_BIAS).astype(np.uint64)
    )
    return packed


def unpack_cell_keys(
    keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_cell_keys`: (resolution, q, r) int64 arrays."""
    keys = np.asarray(keys, dtype=np.uint64)
    resolution = (keys >> np.uint64(2 * _COORD_BITS)).astype(np.int64) & 0xF
    q = ((keys >> np.uint64(_COORD_BITS)).astype(np.int64) & _COORD_MASK) - _COORD_BIAS
    r = (keys.astype(np.int64) & _COORD_MASK) - _COORD_BIAS
    return resolution, q, r


@dataclass(frozen=True, order=True)
class CellId:
    """A grid cell: resolution plus axial (q, r) lattice coordinates."""

    resolution: int
    q: int
    r: int

    def __post_init__(self) -> None:
        if not 0 <= self.resolution < len(H3_MEAN_HEX_AREA_KM2):
            raise GeometryError(f"unsupported resolution: {self.resolution!r}")
        for name, coord in (("q", self.q), ("r", self.r)):
            if not -_COORD_BIAS <= coord < _COORD_BIAS:
                raise GeometryError(f"axial coordinate {name}={coord!r} out of range")

    @property
    def key(self) -> int:
        """Packed 64-bit integer key (columnar analogue of :attr:`token`)."""
        return (
            (self.resolution & 0xF) << (2 * _COORD_BITS)
            | ((self.q + _COORD_BIAS) & _COORD_MASK) << _COORD_BITS
            | ((self.r + _COORD_BIAS) & _COORD_MASK)
        )

    @property
    def token(self) -> str:
        """Hex-string token for CSV round trips (H3-index analogue)."""
        return f"{self.key:015x}"

    @classmethod
    def from_key(cls, key: int) -> "CellId":
        """Inverse of :attr:`key`."""
        key = int(key)
        if not 0 <= key < (1 << 60):
            raise GeometryError(f"cell key out of range: {key!r}")
        resolution = (key >> (2 * _COORD_BITS)) & 0xF
        q = ((key >> _COORD_BITS) & _COORD_MASK) - _COORD_BIAS
        r = (key & _COORD_MASK) - _COORD_BIAS
        return cls(resolution, q, r)

    @classmethod
    def from_token(cls, token: str) -> "CellId":
        """Inverse of :attr:`token`."""
        try:
            packed = int(token, 16)
        except ValueError as exc:
            raise GeometryError(f"malformed cell token: {token!r}") from exc
        return cls.from_key(packed)


class HexGrid:
    """Flat-top hexagonal lattice over an equal-area projection.

    Parameters
    ----------
    resolution:
        H3-style resolution, 0 (coarsest) to 10. Resolution 5 matches the
        ~253 km^2 cells of the Starlink service-cell model.
    """

    def __init__(self, resolution: int = STARLINK_CELL_RESOLUTION):
        if not 0 <= resolution < len(H3_MEAN_HEX_AREA_KM2):
            raise GeometryError(f"unsupported resolution: {resolution!r}")
        self.resolution = resolution
        self.projection = EqualAreaProjection()
        #: Exact spherical area of every cell in this grid, km^2.
        self.cell_area_km2 = H3_MEAN_HEX_AREA_KM2[resolution]
        # Hexagon area = (3*sqrt(3)/2) * a^2 where a is the circumradius.
        self.hex_size_km = math.sqrt(2.0 * self.cell_area_km2 / (3.0 * math.sqrt(3.0)))

    # -- point <-> cell ----------------------------------------------------

    def cell_for(self, point: LatLon) -> CellId:
        """Return the cell containing ``point``."""
        x, y = self.projection.forward(point)
        q, r = self._axial_round(*self._axial_fractional(x, y))
        return CellId(self.resolution, q, r)

    def cell_for_many(
        self, lat_deg: np.ndarray, lon_deg: np.ndarray
    ) -> np.ndarray:
        """Packed uint64 cell keys for arrays of points (see :attr:`CellId.key`).

        Bit-identical to ``cell_for(LatLon(lat, lon)).key`` per point;
        materialize objects with :meth:`CellId.from_key` where needed.
        """
        x, y = self.projection.forward_many(lat_deg, lon_deg)
        a = self.hex_size_km
        qf = (2.0 / 3.0) * x / a
        rf = (-x / 3.0 + math.sqrt(3.0) / 3.0 * y) / a
        q, r = _axial_round_many(qf, rf)
        return pack_cell_keys(self.resolution, q, r)

    def centers_many(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Geographic centers for an array of packed cell keys.

        Returns (lat_deg, lon_deg) arrays, bit-identical to
        :meth:`center` applied per cell.
        """
        resolution, q, r = unpack_cell_keys(keys)
        if resolution.size and (resolution != self.resolution).any():
            bad = int(resolution[resolution != self.resolution][0])
            raise GeometryError(
                f"cell resolution {bad} does not match grid "
                f"resolution {self.resolution}"
            )
        a = self.hex_size_km
        x = a * 1.5 * q.astype(float)
        y = a * math.sqrt(3.0) * (r.astype(float) + q.astype(float) / 2.0)
        return self.projection.inverse_many(x, y)

    def center(self, cell: CellId) -> LatLon:
        """Geographic center of ``cell``."""
        self._check_cell(cell)
        x, y = self._center_xy(cell)
        return self.projection.inverse(x, y)

    def cell_polygon(self, cell: CellId) -> List[LatLon]:
        """Six boundary vertices of ``cell`` (flat-top orientation)."""
        self._check_cell(cell)
        cx, cy = self._center_xy(cell)
        vertices = []
        for k in range(6):
            angle = math.pi / 3.0 * k
            vx = cx + self.hex_size_km * math.cos(angle)
            vy = cy + self.hex_size_km * math.sin(angle)
            vertices.append(self.projection.inverse(vx, vy))
        return vertices

    # -- lattice topology ---------------------------------------------------

    def neighbors(self, cell: CellId) -> List[CellId]:
        """The six lattice neighbors of ``cell``."""
        self._check_cell(cell)
        return [
            CellId(self.resolution, cell.q + dq, cell.r + dr)
            for dq, dr in _AXIAL_NEIGHBOR_OFFSETS
        ]

    def ring(self, cell: CellId, k: int) -> List[CellId]:
        """Cells at exactly hex-distance ``k`` from ``cell`` (k=0 -> [cell])."""
        self._check_cell(cell)
        if k < 0:
            raise GeometryError(f"ring distance must be >= 0: {k!r}")
        if k == 0:
            return [cell]
        results: List[CellId] = []
        # Walk k steps toward neighbor direction 4, then trace the ring.
        q = cell.q + _AXIAL_NEIGHBOR_OFFSETS[4][0] * k
        r = cell.r + _AXIAL_NEIGHBOR_OFFSETS[4][1] * k
        for direction in range(6):
            dq, dr = _AXIAL_NEIGHBOR_OFFSETS[direction]
            for _ in range(k):
                results.append(CellId(self.resolution, q, r))
                q += dq
                r += dr
        return results

    def disk(self, cell: CellId, k: int) -> List[CellId]:
        """All cells within hex-distance ``k`` of ``cell`` (inclusive)."""
        cells: List[CellId] = []
        for radius in range(k + 1):
            cells.extend(self.ring(cell, radius))
        return cells

    def distance(self, a: CellId, b: CellId) -> int:
        """Hex (lattice) distance between two cells of this grid."""
        self._check_cell(a)
        self._check_cell(b)
        dq = a.q - b.q
        dr = a.r - b.r
        return (abs(dq) + abs(dr) + abs(dq + dr)) // 2

    # -- enumeration ----------------------------------------------------------

    def cells_in_bbox(
        self,
        lat_min_deg: float,
        lat_max_deg: float,
        lon_min_deg: float,
        lon_max_deg: float,
    ) -> Iterator[CellId]:
        """Yield every cell whose center lies inside the bounding box.

        The box must not straddle the antimeridian (CONUS does not).
        """
        if lat_min_deg > lat_max_deg or lon_min_deg > lon_max_deg:
            raise GeometryError("bounding box min exceeds max")
        x_min, y_min = self.projection.forward(LatLon(lat_min_deg, lon_min_deg))
        x_max, y_max = self.projection.forward(LatLon(lat_max_deg, lon_max_deg))
        if x_min > x_max:
            raise GeometryError("bounding box straddles the antimeridian")
        a = self.hex_size_km
        q_min = int(math.floor(x_min / (1.5 * a))) - 1
        q_max = int(math.ceil(x_max / (1.5 * a))) + 1
        root3 = math.sqrt(3.0)
        for q in range(q_min, q_max + 1):
            r_lo = int(math.floor(y_min / (root3 * a) - q / 2.0)) - 1
            r_hi = int(math.ceil(y_max / (root3 * a) - q / 2.0)) + 1
            for r in range(r_lo, r_hi + 1):
                cx, cy = self._center_xy_qr(q, r)
                if x_min <= cx <= x_max and y_min <= cy <= y_max:
                    yield CellId(self.resolution, q, r)

    def cells_covering(self, polygon: "Polygon") -> List[CellId]:
        """Cells whose centers fall inside ``polygon`` (H3 polyfill analogue).

        Vectorized: enumerates the candidate lattice block in bulk and
        filters with :meth:`Polygon.contains_many`; produces exactly the
        cells (in the same q-then-r order) the scalar
        ``cells_in_bbox`` + ``contains`` loop did.
        """
        lat_min, lat_max, lon_min, lon_max = polygon.bounds()
        if lat_min > lat_max or lon_min > lon_max:
            raise GeometryError("bounding box min exceeds max")
        x_min, y_min = self.projection.forward(LatLon(lat_min, lon_min))
        x_max, y_max = self.projection.forward(LatLon(lat_max, lon_max))
        if x_min > x_max:
            raise GeometryError("bounding box straddles the antimeridian")
        a = self.hex_size_km
        root3 = math.sqrt(3.0)
        q_values = np.arange(
            int(math.floor(x_min / (1.5 * a))) - 1,
            int(math.ceil(x_max / (1.5 * a))) + 2,
            dtype=np.int64,
        )
        r_lo = np.floor(y_min / (root3 * a) - q_values / 2.0).astype(np.int64) - 1
        r_hi = np.ceil(y_max / (root3 * a) - q_values / 2.0).astype(np.int64) + 1
        lengths = r_hi - r_lo + 1
        q = np.repeat(q_values, lengths)
        # r runs r_lo..r_hi within each q block: a global arange minus each
        # block's running offset, plus its r_lo.
        offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        r = np.arange(lengths.sum(), dtype=np.int64) - np.repeat(
            offsets, lengths
        ) + np.repeat(r_lo, lengths)
        cx = a * 1.5 * q.astype(float)
        cy = a * root3 * (r.astype(float) + q.astype(float) / 2.0)
        in_box = (cx >= x_min) & (cx <= x_max) & (cy >= y_min) & (cy <= y_max)
        q, r = q[in_box], r[in_box]
        lat, lon = self.projection.inverse_many(cx[in_box], cy[in_box])
        inside = polygon.contains_many(lat, lon)
        return [
            CellId(self.resolution, int(qq), int(rr))
            for qq, rr in zip(q[inside], r[inside])
        ]

    # -- internals ------------------------------------------------------------

    def _check_cell(self, cell: CellId) -> None:
        if cell.resolution != self.resolution:
            raise GeometryError(
                f"cell resolution {cell.resolution} does not match grid "
                f"resolution {self.resolution}"
            )

    def _center_xy(self, cell: CellId) -> Tuple[float, float]:
        return self._center_xy_qr(cell.q, cell.r)

    def _center_xy_qr(self, q: int, r: int) -> Tuple[float, float]:
        a = self.hex_size_km
        x = a * 1.5 * q
        y = a * math.sqrt(3.0) * (r + q / 2.0)
        return x, y

    def _axial_fractional(self, x: float, y: float) -> Tuple[float, float]:
        a = self.hex_size_km
        qf = (2.0 / 3.0) * x / a
        rf = (-x / 3.0 + math.sqrt(3.0) / 3.0 * y) / a
        return qf, rf

    @staticmethod
    def _axial_round(qf: float, rf: float) -> Tuple[int, int]:
        # Cube-coordinate rounding (q + r + s = 0).
        sf = -qf - rf
        q = round(qf)
        r = round(rf)
        s = round(sf)
        dq = abs(q - qf)
        dr = abs(r - rf)
        ds = abs(s - sf)
        if dq > dr and dq > ds:
            q = -r - s
        elif dr > ds:
            r = -q - s
        return int(q), int(r)


def _axial_round_many(
    qf: np.ndarray, rf: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized cube-coordinate rounding, identical to ``_axial_round``.

    Both use round-half-even (``round`` / ``np.rint``), and the two
    correction branches are mutually exclusive, so the scalar's
    sequential updates translate directly to masked selects.
    """
    sf = -qf - rf
    q = np.rint(qf)
    r = np.rint(rf)
    s = np.rint(sf)
    dq = np.abs(q - qf)
    dr = np.abs(r - rf)
    ds = np.abs(s - sf)
    fix_q = (dq > dr) & (dq > ds)
    fix_r = ~fix_q & (dr > ds)
    q_out = np.where(fix_q, -r - s, q)
    r_out = np.where(fix_r, -q - s, r)
    return q_out.astype(np.int64), r_out.astype(np.int64)


# Imported at the bottom to avoid a cycle: polygon.py does not import hexgrid.
from repro.geo.polygon import Polygon  # noqa: E402  (intentional late import)
