"""Latitude/longitude primitives and great-circle geometry.

Latitudes and longitudes are in **degrees** at API boundaries (matching how
the FCC map and census data express positions); internal trigonometry is in
radians. Distances are in km on the mean-radius sphere.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.errors import GeometryError
from repro.units import EARTH_RADIUS_KM


class LatLon(NamedTuple):
    """A geographic position in degrees."""

    lat_deg: float
    lon_deg: float


def validate_latlon(lat_deg: float, lon_deg: float) -> None:
    """Raise :class:`GeometryError` unless the coordinates are in range.

    Longitude accepts the conventional [-180, 180] as well as [0, 360).
    """
    if not -90.0 <= lat_deg <= 90.0:
        raise GeometryError(f"latitude out of range [-90, 90]: {lat_deg!r}")
    if not -180.0 <= lon_deg < 360.0:
        raise GeometryError(f"longitude out of range [-180, 360): {lon_deg!r}")


def normalize_lon(lon_deg: float) -> float:
    """Normalize a longitude to the interval [-180, 180)."""
    lon = math.fmod(lon_deg + 180.0, 360.0)
    if lon < 0.0:
        lon += 360.0
    return lon - 180.0


def haversine_km(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two points, in km."""
    phi1 = math.radians(a.lat_deg)
    phi2 = math.radians(b.lat_deg)
    dphi = phi2 - phi1
    dlam = math.radians(normalize_lon(b.lon_deg - a.lon_deg))
    sin_half_dphi = math.sin(dphi / 2.0)
    sin_half_dlam = math.sin(dlam / 2.0)
    h = sin_half_dphi**2 + math.cos(phi1) * math.cos(phi2) * sin_half_dlam**2
    # Clamp to guard against floating-point drift outside [0, 1].
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def bearing_deg(a: LatLon, b: LatLon) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees [0, 360)."""
    phi1 = math.radians(a.lat_deg)
    phi2 = math.radians(b.lat_deg)
    dlam = math.radians(normalize_lon(b.lon_deg - a.lon_deg))
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    bearing = math.degrees(math.atan2(y, x)) % 360.0
    # A tiny negative atan2 result mod 360 rounds to exactly 360.0 in
    # floating point; keep the contract of [0, 360).
    return 0.0 if bearing >= 360.0 else bearing


def destination(start: LatLon, bearing_degrees: float, distance_km: float) -> LatLon:
    """Point reached from ``start`` along ``bearing_degrees`` for ``distance_km``."""
    if distance_km < 0.0:
        raise GeometryError(f"negative distance: {distance_km!r}")
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_degrees)
    phi1 = math.radians(start.lat_deg)
    lam1 = math.radians(start.lon_deg)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    return LatLon(math.degrees(phi2), normalize_lon(math.degrees(lam2)))
