"""Coarse boundary of the contiguous United States (CONUS).

A hand-digitized ~60-vertex outline of the lower 48 states. The paper's
analysis needs geography only to (a) place service cells on US territory,
(b) give each cell a latitude (which drives satellite density), and
(c) partition cells into counties. A coarse outline serves all three; its
enclosed area is within a few percent of the true CONUS land+water area
(~8.08 M km^2), and the latitude span (24.5..49 N) is exact.

Alaska and Hawaii are excluded, as in most national broadband-map capacity
summaries; the paper's cell-count statistics are dominated by CONUS.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.geo.coords import LatLon
from repro.geo.polygon import Polygon

#: Approximate area of the contiguous US (land + inland water), km^2.
CONUS_LAND_AREA_KM2 = 8_080_000.0

#: Counter-clockwise outline: Pacific NW -> Pacific coast -> Mexican border ->
#: Gulf coast -> Florida -> Atlantic coast -> Maine -> Great Lakes -> 49th
#: parallel -> back to the Pacific NW.
_CONUS_OUTLINE: Tuple[Tuple[float, float], ...] = (
    (48.99, -124.70),
    (46.20, -124.10),
    (42.00, -124.40),
    (40.40, -124.40),
    (38.00, -123.00),
    (36.30, -121.90),
    (34.45, -120.47),
    (33.70, -118.20),
    (32.53, -117.12),
    (32.72, -114.72),
    (31.33, -111.07),
    (31.33, -108.21),
    (31.78, -108.21),
    (31.78, -106.53),
    (29.70, -104.40),
    (29.30, -103.20),
    (29.80, -102.40),
    (29.30, -100.90),
    (27.50, -99.50),
    (25.90, -97.14),
    (28.00, -96.50),
    (29.70, -95.00),
    (29.20, -92.00),
    (29.10, -90.10),
    (30.20, -88.90),
    (30.40, -87.20),
    (30.10, -85.60),
    (29.10, -83.50),
    (27.80, -82.70),
    (26.00, -81.80),
    (25.10, -81.10),
    (25.20, -80.40),
    (26.80, -80.00),
    (28.50, -80.50),
    (30.70, -81.40),
    (32.00, -80.80),
    (33.80, -78.50),
    (35.20, -75.50),
    (36.90, -76.00),
    (38.00, -75.00),
    (38.90, -74.90),
    (40.50, -74.00),
    (41.20, -71.90),
    (41.50, -70.00),
    (42.00, -70.00),
    (43.00, -70.50),
    (44.80, -66.90),
    (47.30, -68.20),
    (45.30, -71.10),
    (45.00, -74.70),
    (44.10, -76.50),
    (43.60, -79.10),
    (42.90, -78.90),
    (42.30, -83.10),
    (45.60, -84.50),
    (46.50, -84.40),
    (48.20, -88.40),
    (48.00, -89.60),
    (49.00, -95.15),
    (49.00, -123.30),
)

#: Rough bounding boxes for a few states, used by example scripts to run
#: regional analyses: (lat_min, lat_max, lon_min, lon_max).
STATE_BBOXES: Dict[str, Tuple[float, float, float, float]] = {
    "WV": (37.2, 40.6, -82.7, -77.7),
    "MT": (44.4, 49.0, -116.1, -104.0),
    "NM": (31.3, 37.0, -109.1, -103.0),
    "MS": (30.2, 35.0, -91.7, -88.1),
    "KY": (36.5, 39.2, -89.6, -81.9),
    "ME": (43.1, 47.5, -71.1, -66.9),
}


def conus_polygon() -> Polygon:
    """The coarse CONUS outline as a :class:`Polygon`."""
    return Polygon([LatLon(lat, lon) for lat, lon in _CONUS_OUTLINE])


def conus_bbox() -> Tuple[float, float, float, float]:
    """(lat_min, lat_max, lon_min, lon_max) of the CONUS outline."""
    return conus_polygon().bounds()
