"""Equal-area cylindrical (Lambert) projection.

The projection maps the sphere to the rectangle
``[-pi*R, pi*R] x [-R, R]`` via ``x = R * lon_rad`` and ``y = R * sin(lat)``.
It is exactly area-preserving: a region of planar area ``A`` km^2 corresponds
to a spherical region of the same area. That property is what the hex grid
relies on to give every cell the same spherical area, mirroring H3's
(approximately) equal-area hexagons.

Shape distortion grows toward the poles; the library's study region (CONUS,
24..50 degrees N) keeps distortion moderate, and none of the paper's results
depend on cell *shape*.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import GeometryError
from repro.geo.coords import LatLon, normalize_lon
from repro.units import EARTH_RADIUS_KM


class EqualAreaProjection:
    """Lambert cylindrical equal-area projection on the mean-radius sphere."""

    def __init__(self, radius_km: float = EARTH_RADIUS_KM):
        if radius_km <= 0.0:
            raise GeometryError(f"radius must be positive: {radius_km!r}")
        self.radius_km = radius_km

    @property
    def width_km(self) -> float:
        """Full x-extent of the projected plane (equator circumference)."""
        return 2.0 * math.pi * self.radius_km

    @property
    def height_km(self) -> float:
        """Full y-extent of the projected plane (2R)."""
        return 2.0 * self.radius_km

    def forward(self, point: LatLon) -> Tuple[float, float]:
        """Project a geographic point to planar (x, y) km."""
        lat = point.lat_deg
        if not -90.0 <= lat <= 90.0:
            raise GeometryError(f"latitude out of range: {lat!r}")
        lon = normalize_lon(point.lon_deg)
        x = self.radius_km * math.radians(lon)
        y = self.radius_km * math.sin(math.radians(lat))
        return x, y

    def inverse(self, x: float, y: float) -> LatLon:
        """Unproject planar (x, y) km back to a geographic point.

        ``y`` is clamped to the valid band so that hexagon centers slightly
        past the pole line (an artifact of tiling a rectangle with hexagons)
        still map to a legal latitude.
        """
        sin_lat = min(1.0, max(-1.0, y / self.radius_km))
        lat = math.degrees(math.asin(sin_lat))
        lon = normalize_lon(math.degrees(x / self.radius_km))
        return LatLon(lat, lon)
