"""Equal-area cylindrical (Lambert) projection.

The projection maps the sphere to the rectangle
``[-pi*R, pi*R] x [-R, R]`` via ``x = R * lon_rad`` and ``y = R * sin(lat)``.
It is exactly area-preserving: a region of planar area ``A`` km^2 corresponds
to a spherical region of the same area. That property is what the hex grid
relies on to give every cell the same spherical area, mirroring H3's
(approximately) equal-area hexagons.

Shape distortion grows toward the poles; the library's study region (CONUS,
24..50 degrees N) keeps distortion moderate, and none of the paper's results
depend on cell *shape*.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geo.coords import LatLon, normalize_lon
from repro.units import EARTH_RADIUS_KM


def normalize_lon_many(lon_deg: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.geo.coords.normalize_lon` (to [-180, 180))."""
    # The initial + 180.0 copies, so the in-place steps never touch the
    # caller's array; this kernel sits under every bulk (un)projection.
    lon = np.asarray(lon_deg, dtype=float) + 180.0
    np.fmod(lon, 360.0, out=lon)
    lon[lon < 0.0] += 360.0
    lon -= 180.0
    return lon


class EqualAreaProjection:
    """Lambert cylindrical equal-area projection on the mean-radius sphere."""

    def __init__(self, radius_km: float = EARTH_RADIUS_KM):
        if radius_km <= 0.0:
            raise GeometryError(f"radius must be positive: {radius_km!r}")
        self.radius_km = radius_km

    @property
    def width_km(self) -> float:
        """Full x-extent of the projected plane (equator circumference)."""
        return 2.0 * math.pi * self.radius_km

    @property
    def height_km(self) -> float:
        """Full y-extent of the projected plane (2R)."""
        return 2.0 * self.radius_km

    def forward(self, point: LatLon) -> Tuple[float, float]:
        """Project a geographic point to planar (x, y) km."""
        lat = point.lat_deg
        if not -90.0 <= lat <= 90.0:
            raise GeometryError(f"latitude out of range: {lat!r}")
        lon = normalize_lon(point.lon_deg)
        x = self.radius_km * math.radians(lon)
        y = self.radius_km * math.sin(math.radians(lat))
        return x, y

    def inverse(self, x: float, y: float) -> LatLon:
        """Unproject planar (x, y) km back to a geographic point.

        ``y`` is clamped to the valid band so that hexagon centers slightly
        past the pole line (an artifact of tiling a rectangle with hexagons)
        still map to a legal latitude.
        """
        sin_lat = min(1.0, max(-1.0, y / self.radius_km))
        # np.arcsin, not math.asin: the two can differ in the last ulp, and
        # the scalar and vectorized paths must agree bit-for-bit so that
        # `inverse_many` is differentially testable against this method.
        lat = math.degrees(float(np.arcsin(sin_lat)))
        lon = normalize_lon(math.degrees(x / self.radius_km))
        return LatLon(lat, lon)

    # -- vectorized paths ---------------------------------------------------

    def forward_many(
        self, lat_deg: np.ndarray, lon_deg: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`forward`: degree arrays to planar (x, y) km.

        Bit-identical to mapping :meth:`forward` over the points.
        """
        lat = np.asarray(lat_deg, dtype=float)
        lon = np.asarray(lon_deg, dtype=float)
        if lat.shape != lon.shape:
            raise GeometryError(
                f"latitude/longitude shape mismatch: {lat.shape} vs {lon.shape}"
            )
        in_range = (lat >= -90.0) & (lat <= 90.0)
        if lat.size and not in_range.all():
            bad = lat[~in_range][0]
            raise GeometryError(f"latitude out of range: {bad!r}")
        x = self.radius_km * np.radians(normalize_lon_many(lon))
        y = self.radius_km * np.sin(np.radians(lat))
        return x, y

    def inverse_many(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`inverse`: planar km arrays to (lat, lon) degrees.

        Bit-identical to mapping :meth:`inverse` over the points.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            raise GeometryError(f"x/y shape mismatch: {x.shape} vs {y.shape}")
        sin_lat = np.clip(y / self.radius_km, -1.0, 1.0)
        lat = np.degrees(np.arcsin(sin_lat))
        lon = normalize_lon_many(np.degrees(x / self.radius_km))
        return lat, lon
