"""Simple geographic polygons with containment and area.

Polygons are defined by geographic vertices and evaluated in the equal-area
projected plane: containment uses even-odd ray casting on the projected
vertices, and area uses the planar shoelace formula, which — because the
projection is area-preserving — equals the spherical area for regions whose
edges are short relative to the Earth (true for the coarse CONUS outline
used here).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geo.coords import LatLon
from repro.geo.projection import EqualAreaProjection


class Polygon:
    """A simple (non-self-intersecting) geographic polygon."""

    def __init__(self, vertices: Sequence[LatLon]):
        if len(vertices) < 3:
            raise GeometryError(f"polygon needs >= 3 vertices, got {len(vertices)}")
        self.vertices: List[LatLon] = [LatLon(*v) for v in vertices]
        projection = EqualAreaProjection()
        self._xy = [projection.forward(v) for v in self.vertices]
        xs = [x for x, _ in self._xy]
        if max(xs) - min(xs) > projection.width_km / 2.0:
            raise GeometryError("polygon spans more than half the globe in longitude")

    def bounds(self) -> Tuple[float, float, float, float]:
        """(lat_min, lat_max, lon_min, lon_max) of the vertex set, degrees."""
        lats = [v.lat_deg for v in self.vertices]
        lons = [v.lon_deg for v in self.vertices]
        return min(lats), max(lats), min(lons), max(lons)

    def contains(self, point: LatLon) -> bool:
        """Even-odd containment test in the projected plane."""
        px, py = EqualAreaProjection().forward(point)
        inside = False
        n = len(self._xy)
        for i in range(n):
            x1, y1 = self._xy[i]
            x2, y2 = self._xy[(i + 1) % n]
            if (y1 > py) != (y2 > py):
                x_cross = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
                if px < x_cross:
                    inside = not inside
        return inside

    def contains_many(
        self, lat_deg: np.ndarray, lon_deg: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`contains` over point arrays (boolean mask).

        Same even-odd rule, same arithmetic per edge, so the mask is
        identical to mapping :meth:`contains` over the points.
        """
        px, py = EqualAreaProjection().forward_many(lat_deg, lon_deg)
        inside = np.zeros(px.shape, dtype=bool)
        n = len(self._xy)
        with np.errstate(divide="ignore", invalid="ignore"):
            for i in range(n):
                x1, y1 = self._xy[i]
                x2, y2 = self._xy[(i + 1) % n]
                crossing = (y1 > py) != (y2 > py)
                if not crossing.any():
                    continue
                x_cross = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
                inside ^= crossing & (px < x_cross)
        return inside

    def area_km2(self) -> float:
        """Enclosed area in km^2 (exact under the equal-area projection)."""
        total = 0.0
        n = len(self._xy)
        for i in range(n):
            x1, y1 = self._xy[i]
            x2, y2 = self._xy[(i + 1) % n]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def centroid(self) -> LatLon:
        """Planar centroid mapped back to geographic coordinates."""
        cx = 0.0
        cy = 0.0
        twice_area = 0.0
        n = len(self._xy)
        for i in range(n):
            x1, y1 = self._xy[i]
            x2, y2 = self._xy[(i + 1) % n]
            cross = x1 * y2 - x2 * y1
            twice_area += cross
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        if twice_area == 0.0:
            raise GeometryError("degenerate polygon has zero area")
        cx /= 3.0 * twice_area
        cy /= 3.0 * twice_area
        return EqualAreaProjection().inverse(cx, cy)
