"""Baseline access technologies for comparison against the LEO model.

The paper's scaling property P1 contrasts LEO against terrestrial
technologies whose cost scales with the geography covered. These models
make that contrast quantitative: fiber-to-the-home build-out, regulated
fixed wireless, and a geostationary-satellite baseline.
"""

from repro.baselines.fiber import FiberBuildModel
from repro.baselines.fixed_wireless import FixedWirelessModel
from repro.baselines.geostationary import GeostationaryModel

__all__ = [
    "FiberBuildModel",
    "FixedWirelessModel",
    "GeostationaryModel",
]
