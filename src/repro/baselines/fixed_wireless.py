"""Terrestrial fixed-wireless baseline.

Models the technology the FCC's 20:1 oversubscription rule actually
regulates: towers with sectorized radios serving homes within a radius.
Unlike LEO (P1/P2), capacity here is *added where demand is* — a dense
cell just gets more towers — so peak demand density does not set the size
of a national deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.demand.dataset import DemandDataset
from repro.errors import CapacityModelError
from repro.geo.hexgrid import H3_MEAN_HEX_AREA_KM2
from repro.spectrum.regulatory import (
    FCC_FIXED_WIRELESS_MAX_OVERSUBSCRIPTION,
    RELIABLE_BROADBAND_DOWNLINK_MBPS,
)


@dataclass(frozen=True)
class FixedWirelessModel:
    """Tower-count and cost model for fixed-wireless coverage."""

    #: Aggregate downlink capacity of one tower across sectors, Mbps.
    tower_capacity_mbps: float = 3000.0
    #: Usable coverage radius of one tower, km.
    coverage_radius_km: float = 8.0
    #: Build cost of one tower (site, radios, backhaul), USD.
    tower_cost_usd: float = 250_000.0
    oversubscription: float = FCC_FIXED_WIRELESS_MAX_OVERSUBSCRIPTION

    def __post_init__(self) -> None:
        if self.tower_capacity_mbps <= 0.0 or self.coverage_radius_km <= 0.0:
            raise CapacityModelError("tower parameters must be positive")
        if self.oversubscription <= 0.0:
            raise CapacityModelError("oversubscription must be positive")

    @property
    def locations_per_tower(self) -> int:
        """Locations one tower can serve at the regulated oversubscription."""
        return int(
            self.tower_capacity_mbps
            * self.oversubscription
            // RELIABLE_BROADBAND_DOWNLINK_MBPS
        )

    def towers_for_cell(self, locations: int, cell_area_km2: float) -> int:
        """Towers needed for one cell: max of coverage need and capacity need."""
        if locations < 0:
            raise CapacityModelError(f"negative locations: {locations!r}")
        if locations == 0:
            return 0
        coverage_need = math.ceil(
            cell_area_km2 / (math.pi * self.coverage_radius_km**2)
        )
        capacity_need = math.ceil(locations / self.locations_per_tower)
        return max(coverage_need, capacity_need)

    def dataset_deployment(self, dataset: DemandDataset) -> Dict[str, float]:
        """Tower count and cost to serve a whole demand dataset."""
        area = H3_MEAN_HEX_AREA_KM2[dataset.grid_resolution]
        counts = dataset.counts()
        towers = np.array(
            [self.towers_for_cell(int(c), area) for c in counts], dtype=int
        )
        total_towers = int(towers.sum())
        return {
            "towers": total_towers,
            "total_cost_usd": total_towers * self.tower_cost_usd,
            "towers_for_peak_cell": int(towers.max()),
            "locations_per_tower": self.locations_per_tower,
        }
