"""Geostationary satellite baseline.

The first-generation comparison the paper's Section 2 narrates: GEO
satellites sit still (no constellation needed — one satellite covers a
third of the Earth) but at ~35,786 km altitude, with the latency that
implies, and with total capacity far below an entire LEO constellation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.demand.dataset import DemandDataset
from repro.errors import CapacityModelError
from repro.spectrum.regulatory import RELIABLE_BROADBAND_DOWNLINK_MBPS
from repro.units import SPEED_OF_LIGHT_KM_S

#: Geostationary orbit altitude, km.
GEO_ALTITUDE_KM = 35_786.0

#: FCC latency cutoff for "low-latency" broadband service, ms (round trip).
FCC_LOW_LATENCY_CUTOFF_MS = 100.0


@dataclass(frozen=True)
class GeostationaryModel:
    """A modern high-throughput GEO satellite (ViaSat-3 class)."""

    satellite_capacity_mbps: float = 1_000_000.0  # ~1 Tbps
    oversubscription: float = 20.0

    def __post_init__(self) -> None:
        if self.satellite_capacity_mbps <= 0.0:
            raise CapacityModelError("capacity must be positive")
        if self.oversubscription <= 0.0:
            raise CapacityModelError("oversubscription must be positive")

    @staticmethod
    def propagation_rtt_ms() -> float:
        """Bent-pipe round-trip propagation delay (4 x one-way), ms."""
        one_way_s = GEO_ALTITUDE_KM / SPEED_OF_LIGHT_KM_S
        return 4.0 * one_way_s * 1000.0

    @classmethod
    def meets_low_latency(cls) -> bool:
        """GEO can never meet the FCC low-latency cutoff."""
        return cls.propagation_rtt_ms() <= FCC_LOW_LATENCY_CUTOFF_MS

    def satellites_for_dataset(self, dataset: DemandDataset) -> Dict[str, float]:
        """GEO satellites needed for a dataset's total (not peak!) demand.

        GEO capacity pools over the whole footprint, so — unlike LEO —
        *total* demand sizes the fleet (contrast with P2). Latency still
        disqualifies the service from the reliable-broadband definition.
        """
        demand = dataset.total_locations * RELIABLE_BROADBAND_DOWNLINK_MBPS
        provisioned = demand / self.oversubscription
        return {
            "satellites": math.ceil(provisioned / self.satellite_capacity_mbps),
            "total_demand_mbps": demand,
            "propagation_rtt_ms": self.propagation_rtt_ms(),
            "meets_low_latency": self.meets_low_latency(),
        }
