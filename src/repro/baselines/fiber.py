"""Fiber-to-the-home build-out cost model (terrestrial baseline, P1).

P1's terrestrial side: the cost of fiber scales with the distance between
homes and the backbone. The model estimates per-location build cost from
local location density — at ``d`` locations per km^2, homes are roughly
``1/sqrt(d)`` km apart, so drop/route length (and cost) grows as density
falls. Constants bracket published US FTTH figures: ~$1,500 per location
passed in dense areas up to tens of thousands of dollars in remote ones
(BEAD's "extremely high cost per location" threshold territory).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.demand.dataset import DemandDataset
from repro.errors import CapacityModelError
from repro.geo.hexgrid import H3_MEAN_HEX_AREA_KM2


@dataclass(frozen=True)
class FiberBuildModel:
    """Per-location FTTH cost as a function of location density."""

    #: Fixed per-location cost (drop, ONT, install), USD.
    base_cost_usd: float = 1200.0
    #: Cost per km of fiber route, USD (aerial/rural blend).
    cost_per_route_km_usd: float = 25000.0
    #: Fraction of inter-home spacing that needs new route per location.
    route_share: float = 1.0

    def __post_init__(self) -> None:
        if self.base_cost_usd < 0.0 or self.cost_per_route_km_usd <= 0.0:
            raise CapacityModelError("fiber cost constants must be positive")
        if not 0.0 < self.route_share <= 2.0:
            raise CapacityModelError(
                f"route share out of (0, 2]: {self.route_share!r}"
            )

    def cost_per_location_usd(self, density_per_km2: float) -> float:
        """Build cost for one location at a local density."""
        if density_per_km2 <= 0.0:
            raise CapacityModelError(
                f"density must be positive: {density_per_km2!r}"
            )
        spacing_km = 1.0 / math.sqrt(density_per_km2)
        return self.base_cost_usd + self.route_share * spacing_km * (
            self.cost_per_route_km_usd
        )

    def dataset_cost(self, dataset: DemandDataset) -> Dict[str, float]:
        """Total and distributional FTTH cost for a demand dataset.

        Density per cell is its location count over the cell area — an
        underestimate of true local density (cells also hold served homes),
        hence a *conservative* (high) cost; the comparison direction is
        what matters.
        """
        area = H3_MEAN_HEX_AREA_KM2[dataset.grid_resolution]
        counts = dataset.counts().astype(float)
        densities = counts / area
        per_location = np.array(
            [self.cost_per_location_usd(d) for d in densities]
        )
        total = float((per_location * counts).sum())
        return {
            "total_cost_usd": total,
            "mean_cost_per_location_usd": total / float(counts.sum()),
            "max_cost_per_location_usd": float(per_location.max()),
            "min_cost_per_location_usd": float(per_location.min()),
        }

    def marginal_cost_curve(
        self, dataset: DemandDataset, points: int = 50
    ) -> Dict[str, np.ndarray]:
        """Cost per location vs cumulative locations served, cheapest-first.

        The terrestrial mirror of Fig 3: terrestrial marginal cost *rises*
        into the tail for the opposite reason (distance, not peak density).
        """
        if points < 2:
            raise CapacityModelError(f"need >= 2 points: {points!r}")
        area = H3_MEAN_HEX_AREA_KM2[dataset.grid_resolution]
        counts = dataset.counts().astype(float)
        per_location = np.array(
            [self.cost_per_location_usd(c / area) for c in counts]
        )
        order = np.argsort(per_location)
        cumulative = np.cumsum(counts[order])
        sample = np.linspace(0, len(order) - 1, points).astype(int)
        return {
            "cumulative_locations": cumulative[sample],
            "marginal_cost_usd": per_location[order][sample],
        }
